// Replica-set accounting: the class-set generalization of the compiled
// per-(object, class) tables. A replicated placement maps each object to a
// set of classes holding a copy; reads are routed to the best replica for
// the access pattern (min service time over members, per I/O type) and
// writes charge every replica (each copy must be kept current). Both rules
// are precomputed per (object, class-set) into dense rows, so evaluating a
// replicated layout stays a flat array sum and a one-unit set change
// re-costs in O(1) — the same building blocks the single-class search runs
// on, widened from device.NumClasses to device.NumClassSets columns.
//
// Bit-parity contract: for a singleton set {c} the per-type terms are the
// same float expressions, accumulated in the same order, as the
// single-class row for c — the read minimum over one member is that
// member's service time and the write sum over one member has one term —
// so singleton-set evaluations are bit-identical to the single-class path.
package iosim

import (
	"fmt"
	"sort"
	"time"

	"dotprov/internal/catalog"
	"dotprov/internal/device"
)

// CompiledSetProfile is a Profile compiled against one (box, concurrency)
// pair over class-set placements: a dense per-(object, class-set) table of
// the object's total I/O time when placed on that set, with reads charged
// to the set's best member per I/O type and writes charged to every
// member. Like CompiledProfile it is frozen at compile time and safe for
// concurrent use.
type CompiledSetProfile struct {
	boxName string
	// objs lists the profiled ObjectIDs in ascending order; rows holds their
	// per-set time subtotals, row k at rows[k*device.NumClassSets:].
	objs []catalog.ObjectID
	rows []time.Duration
	// rowOf maps DenseIndex(id) -> row index, -1 for unprofiled objects.
	rowOf []int32
	// invalid marks unusable masks: the empty set, sets naming undefined
	// classes, and sets with a member absent from the box.
	invalid [device.NumClassSets]bool
}

// CompileSetProfile builds the dense class-set table. n is the catalog's
// object count; profiled objects outside [1, n] are kept and surface the
// map path's "not placed by layout" error.
func CompileSetProfile(p Profile, box *device.Box, concurrency, n int) *CompiledSetProfile {
	cp := &CompiledSetProfile{
		boxName: box.Name,
		objs:    make([]catalog.ObjectID, 0, len(p)),
		rowOf:   make([]int32, n),
	}
	for i := range cp.rowOf {
		cp.rowOf[i] = -1
	}
	for id := range p {
		cp.objs = append(cp.objs, id)
	}
	sort.Slice(cp.objs, func(i, j int) bool { return cp.objs[i] < cp.objs[j] })
	var svc [device.NumClasses][device.NumIOTypes]time.Duration
	var absent [device.NumClasses]bool
	for c := 0; c < device.NumClasses; c++ {
		d := box.Device(device.Class(c))
		if d == nil {
			absent[c] = true
			continue
		}
		for _, t := range device.AllIOTypes {
			svc[c][t] = d.ServiceTime(t, concurrency)
		}
	}
	cp.invalid[0] = true
	for m := 1; m < device.NumClassSets; m++ {
		set := device.ClassSet(m)
		if !set.Valid() {
			cp.invalid[m] = true
			continue
		}
		for c := 0; c < device.NumClasses; c++ {
			if set.Has(device.Class(c)) && absent[c] {
				cp.invalid[m] = true
				break
			}
		}
	}
	cp.rows = make([]time.Duration, len(cp.objs)*device.NumClassSets)
	for k, id := range cp.objs {
		v := p[id]
		row := cp.rows[k*device.NumClassSets : (k+1)*device.NumClassSets]
		for m := 1; m < device.NumClassSets; m++ {
			if cp.invalid[m] {
				continue
			}
			set := device.ClassSet(m)
			var total time.Duration
			for _, t := range device.AllIOTypes {
				n := v[t]
				if n <= 0 {
					continue
				}
				if t.IsRead() {
					// Best replica: minimum member service time, ties to the
					// lowest class (ascending scan, strict improvement).
					var best time.Duration
					first := true
					for c := 0; c < device.NumClasses; c++ {
						if !set.Has(device.Class(c)) {
							continue
						}
						if first || svc[c][t] < best {
							best = svc[c][t]
							first = false
						}
					}
					total += time.Duration(n * float64(best))
				} else {
					// Writes charge every replica, members in ascending class
					// order (one term per member, exactly the single-class
					// term for that member).
					for c := 0; c < device.NumClasses; c++ {
						if set.Has(device.Class(c)) {
							total += time.Duration(n * float64(svc[c][t]))
						}
					}
				}
			}
			row[m] = total
		}
		if i := catalog.DenseIndex(id); i >= 0 && i < len(cp.rowOf) {
			cp.rowOf[i] = int32(k)
		}
	}
	return cp
}

// ValidSet reports whether the class-set mask is usable under this compile:
// non-empty, defined, with every member present in the box.
func (cp *CompiledSetProfile) ValidSet(set device.ClassSet) bool {
	return int(set) < device.NumClassSets && !cp.invalid[set]
}

// IOTime computes the profile's accumulated I/O time under a compact
// layout whose placement bytes are class-set masks. Error cases mirror
// CompiledProfile.IOTime: a profiled object left unplaced, or placed on an
// unusable set.
func (cp *CompiledSetProfile) IOTime(cl catalog.CompactLayout) (time.Duration, error) {
	var total time.Duration
	for k, id := range cp.objs {
		set, ok := cl.MaskAt(catalog.DenseIndex(id))
		if !ok {
			return 0, fmt.Errorf("iosim: object %d not placed by layout", id)
		}
		if cp.invalid[set] {
			return 0, fmt.Errorf("iosim: layout places object %d on class set %v unusable for box %q", id, set, cp.boxName)
		}
		total += cp.rows[k*device.NumClassSets+int(set)]
	}
	return total, nil
}

// DeltaIOTime returns the change in the profile's I/O time when object id
// moves from one class set to another. Unprofiled objects contribute
// nothing; an unusable set is an error, matching IOTime.
func (cp *CompiledSetProfile) DeltaIOTime(id catalog.ObjectID, from, to device.ClassSet) (time.Duration, error) {
	i := catalog.DenseIndex(id)
	if i < 0 || i >= len(cp.rowOf) || cp.rowOf[i] < 0 {
		return 0, nil
	}
	if int(from) >= device.NumClassSets || cp.invalid[from] {
		return 0, fmt.Errorf("iosim: layout places object %d on class set %v unusable for box %q", id, from, cp.boxName)
	}
	if int(to) >= device.NumClassSets || cp.invalid[to] {
		return 0, fmt.Errorf("iosim: layout places object %d on class set %v unusable for box %q", id, to, cp.boxName)
	}
	row := cp.rows[int(cp.rowOf[i])*device.NumClassSets:]
	return row[to] - row[from], nil
}

// AccumulateSetTimes adds every profiled object's per-set time row into a
// dense table indexed by DenseIndex(id)*device.NumClassSets + mask: the raw
// material of the replica branch-and-bound's admissible bound, exactly as
// AccumulateClassTimes is for the single-class search. Rows of unusable
// masks stay zero; the bound only ever consults the masks the enumeration
// actually assigns, which are all usable.
func (cp *CompiledSetProfile) AccumulateSetTimes(table []time.Duration) {
	for k, id := range cp.objs {
		i := catalog.DenseIndex(id)
		if i < 0 || (i+1)*device.NumClassSets > len(table) {
			continue
		}
		row := cp.rows[k*device.NumClassSets : (k+1)*device.NumClassSets]
		dst := table[i*device.NumClassSets : (i+1)*device.NumClassSets]
		for m := range row {
			dst[m] += row[m]
		}
	}
}

// AppendSetRow appends object id's per-set time row as fixed-width bytes
// (8 per mask, big-endian) to dst. Two objects with equal appended rows
// are interchangeable under this profile for every replicated layout: each
// usable set contributes the same time for both, and unusable sets never
// appear in an enumerated layout.
func (cp *CompiledSetProfile) AppendSetRow(dst []byte, id catalog.ObjectID) []byte {
	var row []time.Duration
	if i := catalog.DenseIndex(id); i >= 0 && i < len(cp.rowOf) && cp.rowOf[i] >= 0 {
		k := int(cp.rowOf[i])
		row = cp.rows[k*device.NumClassSets : (k+1)*device.NumClassSets]
	}
	for m := 0; m < device.NumClassSets; m++ {
		var v uint64
		if row != nil {
			v = uint64(row[m])
		}
		dst = append(dst,
			byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return dst
}

// SetIOTime is the map-path replica estimate: the accumulated I/O time of
// the profile under a replicated layout, reads on each object's best
// member per I/O type and writes on every member. The layout parameter
// reuses catalog.Layout as the carrier — each value is a device.ClassSet
// mask stored in the Class slot — because the search engine's map pipeline
// is typed over Layout; interpretation is the caller's contract, and the
// replica search keeps a dedicated engine so mask and class keys never
// share a memo. Per-term arithmetic matches CompileSetProfile, so map and
// compiled replica paths are bit-identical (integer Duration sums reorder
// exactly across the map's iteration order).
func (p Profile) SetIOTime(layout catalog.Layout, box *device.Box, concurrency int) (time.Duration, error) {
	var total time.Duration
	for id, v := range p {
		raw, ok := layout[id]
		if !ok {
			return 0, fmt.Errorf("iosim: object %d not placed by layout", id)
		}
		set := device.ClassSet(raw)
		if !set.Valid() {
			return 0, fmt.Errorf("iosim: layout places object %d on invalid class set %v", id, set)
		}
		var devs [device.NumClasses]*device.Device
		for c := 0; c < device.NumClasses; c++ {
			if !set.Has(device.Class(c)) {
				continue
			}
			d := box.Device(device.Class(c))
			if d == nil {
				return 0, fmt.Errorf("iosim: layout places object %d on class set %v unusable for box %q", id, set, box.Name)
			}
			devs[c] = d
		}
		for _, t := range device.AllIOTypes {
			n := v[t]
			if n <= 0 {
				continue
			}
			if t.IsRead() {
				var best time.Duration
				first := true
				for c := 0; c < device.NumClasses; c++ {
					if devs[c] == nil {
						continue
					}
					if st := devs[c].ServiceTime(t, concurrency); first || st < best {
						best = st
						first = false
					}
				}
				total += time.Duration(n * float64(best))
			} else {
				for c := 0; c < device.NumClasses; c++ {
					if devs[c] != nil {
						total += time.Duration(n * float64(devs[c].ServiceTime(t, concurrency)))
					}
				}
			}
		}
	}
	return total, nil
}
