package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dotprov/internal/bufferpool"
	"dotprov/internal/catalog"
	"dotprov/internal/device"
	"dotprov/internal/pagestore"
	"dotprov/internal/types"
)

func intKey(v int64) []byte { return types.EncodeKey(nil, types.NewInt(v)) }

func rid(n int) pagestore.RID { return pagestore.RID{Page: uint32(n / 100), Slot: uint16(n % 100)} }

type counter struct {
	rr int64
}

func (c *counter) ChargeIO(_ catalog.ObjectID, t device.IOType, n int64) {
	if t == device.RandRead {
		c.rr += n
	}
}

func TestInsertSearchSmall(t *testing.T) {
	tr := New(1)
	pool := bufferpool.New(64)
	for i := 0; i < 100; i++ {
		tr.Insert(pool, bufferpool.NopCharger{}, intKey(int64(i)), rid(i))
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tr.Len())
	}
	for i := 0; i < 100; i++ {
		got := tr.SearchEq(pool, bufferpool.NopCharger{}, intKey(int64(i)))
		if len(got) != 1 || got[0] != rid(i) {
			t.Fatalf("SearchEq(%d) = %v", i, got)
		}
	}
	if got := tr.SearchEq(pool, bufferpool.NopCharger{}, intKey(1000)); len(got) != 0 {
		t.Fatalf("SearchEq(miss) = %v", got)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitsProduceValidTree(t *testing.T) {
	tr := NewWithCaps(1, 4, 4)
	pool := bufferpool.New(1024)
	r := rand.New(rand.NewSource(7))
	perm := r.Perm(2000)
	for _, v := range perm {
		tr.Insert(pool, bufferpool.NopCharger{}, intKey(int64(v)), rid(v))
		if v%203 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("after insert %d: %v", v, err)
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 4 {
		t.Fatalf("height = %d; small caps should force a deep tree", tr.Height())
	}
	for _, v := range []int{0, 1, 999, 1999} {
		got := tr.SearchEq(pool, bufferpool.NopCharger{}, intKey(int64(v)))
		if len(got) != 1 || got[0] != rid(v) {
			t.Fatalf("SearchEq(%d) after splits = %v", v, got)
		}
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := NewWithCaps(1, 4, 4)
	pool := bufferpool.New(1024)
	for i := 0; i < 50; i++ {
		tr.Insert(pool, bufferpool.NopCharger{}, intKey(7), rid(i))
	}
	got := tr.SearchEq(pool, bufferpool.NopCharger{}, intKey(7))
	if len(got) != 50 {
		t.Fatalf("found %d duplicates, want 50", len(got))
	}
	// Entries come back in RID order (entries are unique on (key, rid)).
	for i := 1; i < len(got); i++ {
		if !(got[i-1].Page < got[i].Page || (got[i-1].Page == got[i].Page && got[i-1].Slot < got[i].Slot)) {
			t.Fatal("duplicate RIDs not ordered")
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeScan(t *testing.T) {
	tr := NewWithCaps(1, 8, 8)
	pool := bufferpool.New(1024)
	for i := 0; i < 500; i++ {
		tr.Insert(pool, bufferpool.NopCharger{}, intKey(int64(i*2)), rid(i)) // even keys
	}
	collect := func(lo, hi []byte, loIncl, hiIncl bool) []int64 {
		var out []int64
		tr.Range(pool, bufferpool.NopCharger{}, lo, hi, loIncl, hiIncl, func(k []byte, r pagestore.RID) bool {
			out = append(out, int64(r.Page)*100+int64(r.Slot))
			return true
		})
		return out
	}
	got := collect(intKey(10), intKey(20), true, true)
	if len(got) != 6 { // 10,12,14,16,18,20
		t.Fatalf("inclusive range [10,20] returned %d entries, want 6", len(got))
	}
	got = collect(intKey(10), intKey(20), false, false)
	if len(got) != 4 {
		t.Fatalf("exclusive range (10,20) returned %d entries, want 4", len(got))
	}
	got = collect(intKey(11), intKey(13), true, true)
	if len(got) != 1 {
		t.Fatalf("range [11,13] returned %d entries, want 1 (key 12)", len(got))
	}
	got = collect(nil, intKey(8), true, true)
	if len(got) != 5 { // 0,2,4,6,8
		t.Fatalf("range [nil,8] returned %d, want 5", len(got))
	}
	got = collect(intKey(990), nil, true, true)
	if len(got) != 5 { // 990..998
		t.Fatalf("range [990,nil] returned %d, want 5", len(got))
	}
	got = collect(nil, nil, true, true)
	if len(got) != 500 {
		t.Fatalf("full scan returned %d, want 500", len(got))
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tr := New(1)
	pool := bufferpool.New(64)
	for i := 0; i < 100; i++ {
		tr.Insert(pool, bufferpool.NopCharger{}, intKey(int64(i)), rid(i))
	}
	n := 0
	tr.Range(pool, bufferpool.NopCharger{}, nil, nil, true, true, func([]byte, pagestore.RID) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Fatalf("early stop visited %d, want 7", n)
	}
}

func TestDelete(t *testing.T) {
	tr := NewWithCaps(1, 4, 4)
	pool := bufferpool.New(1024)
	for i := 0; i < 300; i++ {
		tr.Insert(pool, bufferpool.NopCharger{}, intKey(int64(i)), rid(i))
	}
	for i := 0; i < 300; i += 2 {
		if !tr.Delete(pool, bufferpool.NopCharger{}, intKey(int64(i)), rid(i)) {
			t.Fatalf("Delete(%d) reported not found", i)
		}
	}
	if tr.Len() != 150 {
		t.Fatalf("Len after deletes = %d, want 150", tr.Len())
	}
	for i := 0; i < 300; i++ {
		got := tr.SearchEq(pool, bufferpool.NopCharger{}, intKey(int64(i)))
		if i%2 == 0 && len(got) != 0 {
			t.Fatalf("deleted key %d still found", i)
		}
		if i%2 == 1 && len(got) != 1 {
			t.Fatalf("surviving key %d lost", i)
		}
	}
	if tr.Delete(pool, bufferpool.NopCharger{}, intKey(0), rid(0)) {
		t.Fatal("double delete should report false")
	}
	if tr.Delete(pool, bufferpool.NopCharger{}, intKey(5000), rid(1)) {
		t.Fatal("delete of missing key should report false")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteSpecificDuplicate(t *testing.T) {
	tr := New(1)
	pool := bufferpool.New(64)
	for i := 0; i < 10; i++ {
		tr.Insert(pool, bufferpool.NopCharger{}, intKey(1), rid(i))
	}
	if !tr.Delete(pool, bufferpool.NopCharger{}, intKey(1), rid(4)) {
		t.Fatal("delete of one duplicate failed")
	}
	got := tr.SearchEq(pool, bufferpool.NopCharger{}, intKey(1))
	if len(got) != 9 {
		t.Fatalf("%d duplicates left, want 9", len(got))
	}
	for _, r := range got {
		if r == rid(4) {
			t.Fatal("wrong duplicate removed")
		}
	}
}

func TestIOChargedThroughPool(t *testing.T) {
	tr := NewWithCaps(1, 16, 16)
	pool := bufferpool.New(4096)
	for i := 0; i < 5000; i++ {
		tr.Insert(pool, bufferpool.NopCharger{}, intKey(int64(i)), rid(i))
	}
	pool.Clear()
	ch := &counter{}
	tr.SearchEq(pool, ch, intKey(42))
	if ch.rr < int64(tr.Height()) {
		t.Fatalf("cold search charged %d RRs, want >= height %d", ch.rr, tr.Height())
	}
	// Warm search is free.
	ch2 := &counter{}
	tr.SearchEq(pool, ch2, intKey(42))
	if ch2.rr != 0 {
		t.Fatalf("warm search charged %d RRs, want 0", ch2.rr)
	}
}

func TestLeafPagesEstimate(t *testing.T) {
	tr := NewWithCaps(1, 10, 10)
	pool := bufferpool.New(1024)
	if tr.LeafPages() != 1 {
		t.Fatal("empty tree should report 1 leaf page")
	}
	for i := 0; i < 95; i++ {
		tr.Insert(pool, bufferpool.NopCharger{}, intKey(int64(i)), rid(i))
	}
	if got := tr.LeafPages(); got != 10 {
		t.Fatalf("LeafPages = %d, want ceil(95/10) = 10", got)
	}
}

func TestStringKeys(t *testing.T) {
	tr := New(1)
	pool := bufferpool.New(64)
	names := []string{"BARBARBAR", "OUGHTPRES", "ABLEABLE", "ESEESEESE", "ANTIANTI"}
	for i, n := range names {
		tr.Insert(pool, bufferpool.NopCharger{}, types.EncodeKey(nil, types.NewString(n)), rid(i))
	}
	got := tr.SearchEq(pool, bufferpool.NopCharger{}, types.EncodeKey(nil, types.NewString("OUGHTPRES")))
	if len(got) != 1 || got[0] != rid(1) {
		t.Fatalf("string search = %v", got)
	}
	// Range over all keys returns them in sorted order.
	var order []pagestore.RID
	tr.Range(pool, bufferpool.NopCharger{}, nil, nil, true, true, func(_ []byte, r pagestore.RID) bool {
		order = append(order, r)
		return true
	})
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for i, r := range order {
		if names[int(r.Page)*100+int(r.Slot)] != sorted[i] {
			t.Fatalf("string order wrong at %d", i)
		}
	}
}

// Property: the tree agrees with a sorted reference model under random
// inserts and deletes, and invariants hold throughout.
func TestTreeModelProperty(t *testing.T) {
	f := func(ops []int16) bool {
		tr := NewWithCaps(1, 4, 4)
		pool := bufferpool.New(4096)
		model := map[int64]bool{}
		for _, o := range ops {
			v := int64(o % 256)
			if o >= 0 {
				if !model[v] {
					tr.Insert(pool, bufferpool.NopCharger{}, intKey(v), rid(int(v)))
					model[v] = true
				}
			} else if model[v] {
				if !tr.Delete(pool, bufferpool.NopCharger{}, intKey(v), rid(int(v))) {
					return false
				}
				delete(model, v)
			}
		}
		if tr.Validate() != nil {
			return false
		}
		if tr.Len() != int64(len(model)) {
			return false
		}
		var got []int64
		tr.Range(pool, bufferpool.NopCharger{}, nil, nil, true, true, func(_ []byte, r pagestore.RID) bool {
			got = append(got, int64(r.Page)*100+int64(r.Slot))
			return true
		})
		var want []int64
		for v := range model {
			want = append(want, v)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := New(1)
	pool := bufferpool.New(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(pool, bufferpool.NopCharger{}, intKey(int64(i)), rid(i))
	}
}

func BenchmarkSearch(b *testing.B) {
	tr := New(1)
	pool := bufferpool.New(1 << 16)
	for i := 0; i < 100000; i++ {
		tr.Insert(pool, bufferpool.NopCharger{}, intKey(int64(i)), rid(i))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.SearchEq(pool, bufferpool.NopCharger{}, intKey(int64(i%100000)))
	}
}
