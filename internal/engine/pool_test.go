package engine

import (
	"dotprov/internal/catalog"
	"testing"

	"dotprov/internal/plan"
	"dotprov/internal/types"
)

func TestTotalPagesAndResizePool(t *testing.T) {
	db := newTestDB(t)
	total := db.TotalPages()
	if total <= 0 {
		t.Fatal("TotalPages should be positive after loading")
	}
	// Heaps plus trees must both count.
	var heapPages int
	for _, tab := range db.Cat.Tables() {
		heapPages += db.Heap(tab.ID).NumPages()
	}
	if total <= heapPages {
		t.Fatalf("TotalPages (%d) should exceed heap pages (%d): indexes count too", total, heapPages)
	}
	// Shrinking the pool increases misses for the same workload.
	q := &plan.Query{Name: "scan", Tables: []string{"orders"}, Aggs: []plan.Agg{{Func: plan.Count}}}
	run := func(pool int) int64 {
		db.ResizePool(pool)
		// Warm.
		sess, _ := db.NewSession()
		if _, err := sess.Run(q); err != nil {
			t.Fatal(err)
		}
		// Measure the warm pass.
		sess2, _ := db.NewSession()
		if _, err := sess2.Run(q); err != nil {
			t.Fatal(err)
		}
		return int64(sess2.Acct().Profile().Get(tableIDOf(t, db, "orders")).Total())
	}
	bigPoolIO := run(total * 2)
	tinyPoolIO := run(2)
	if bigPoolIO >= tinyPoolIO {
		t.Fatalf("warm scan with a huge pool charged %d I/Os, tiny pool %d: caching not effective", bigPoolIO, tinyPoolIO)
	}
}

func tableIDOf(t *testing.T, db *DB, name string) catalog.ObjectID {
	t.Helper()
	tab, err := db.Cat.TableByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return tab.ID
}

func TestConcurrencySettings(t *testing.T) {
	db := newTestDB(t)
	db.SetConcurrency(0)
	if db.Concurrency() != 1 {
		t.Fatal("concurrency below 1 should clamp")
	}
	db.SetConcurrency(300)
	if db.Concurrency() != 300 {
		t.Fatal("concurrency not stored")
	}
	if db.Optimizer().Concurrency != 300 {
		t.Fatal("optimizer concurrency not updated")
	}
	// Sessions resolve service times at the configured concurrency: H-SSD
	// RR is faster at c=300 than at c=1 (Table 1), so the same point query
	// consumes less virtual time.
	q := &plan.Query{
		Name:   "point",
		Tables: []string{"item"},
		Preds:  []plan.Pred{{Table: "item", Column: "i_id", Op: plan.Eq, Lo: types300()}},
	}
	db.ClearPool()
	fast, _ := db.NewSession()
	if _, err := fast.Run(q); err != nil {
		t.Fatal(err)
	}
	t300 := fast.Acct().IOTime()
	db.SetConcurrency(1)
	db.ClearPool()
	slow, _ := db.NewSession()
	if _, err := slow.Run(q); err != nil {
		t.Fatal(err)
	}
	t1 := slow.Acct().IOTime()
	if t300 >= t1 {
		t.Fatalf("H-SSD point query at c=300 (%v) should be faster than at c=1 (%v)", t300, t1)
	}
}

func types300() types.Value { return types.NewInt(300) }
