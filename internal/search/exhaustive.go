package search

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"dotprov/internal/catalog"
	"dotprov/internal/device"
	"dotprov/internal/workload"
)

// Space is an assignment space for exhaustive enumeration: every Free
// object ranges over Classes while Base pins everything else. Candidates
// are generated in odometer order — Free[0] cycles fastest — matching the
// paper's M^N enumeration.
//
// SizeGB (dense, indexed by catalog.DenseIndex), PriceCents and Bound are
// the accumulator form of pruning, shared with CompactSpace: when Bound is
// set the walk maintains the running per-hour storage cost of the base
// plus every assigned object incrementally — one multiply-add per
// assignment instead of a partial-layout walk per node — and consults
// Bound with it. A map-form LowerBound passed alongside is only used when
// Bound is nil.
type Space struct {
	Base       catalog.Layout
	Free       []catalog.ObjectID
	Classes    []device.Class
	SizeGB     []float64
	PriceCents [device.NumClasses]float64
	Bound      CompactBound
}

// LowerBound returns an admissible lower bound on the TOC of every layout
// that completes the partial assignment: `partial` holds Base plus the
// already-assigned free objects, `unassigned` lists the free objects still
// open. Enumeration prunes a subtree only when the bound strictly exceeds
// the incumbent feasible TOC, so an admissible bound never changes the
// result — only how many candidates are evaluated.
type LowerBound func(partial catalog.Layout, unassigned []catalog.ObjectID) (float64, error)

// CompactBound is the compiled path's admissible lower bound. Instead of
// re-walking a partial layout per node, it receives the DFS's running
// per-hour storage cost of the base plus every assigned object (maintained
// incrementally per assignment) and the free objects still unassigned.
// ok=false declines to bound (no pruning at that node).
type CompactBound func(perHourCents float64, unassigned []catalog.ObjectID) (floor float64, ok bool)

// CompactSpace is Space for the compiled DFS. SizeGB (dense, indexed by
// catalog.DenseIndex) and PriceCents (per class) feed the running
// storage-cost accumulator; both are required when Bound is set.
type CompactSpace struct {
	Base       catalog.CompactLayout
	Free       []catalog.ObjectID
	Classes    []device.Class
	SizeGB     []float64
	PriceCents [device.NumClasses]float64
	Bound      CompactBound
}

// incumbent tracks the best feasible evaluation with the deterministic
// tie-break: lower TOC wins, equal TOC resolves to the lower enumeration
// index (the sequential first-found-wins rule).
type incumbent struct {
	mu  sync.Mutex
	ok  bool
	idx int
	ev  Eval
}

func (b *incumbent) offer(idx int, ev Eval) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.ok || ev.TOCCents < b.ev.TOCCents || (ev.TOCCents == b.ev.TOCCents && idx < b.idx) {
		b.ok, b.idx, b.ev = true, idx, ev
	}
}

func (b *incumbent) toc() (float64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ev.TOCCents, b.ok
}

func (b *incumbent) get() (Eval, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ev, b.ok
}

var errStopped = errors.New("search: enumeration stopped")

// enumerate walks the space depth-first in odometer order, pruning subtrees
// whose lower bound strictly exceeds the incumbent, and calls emit with each
// surviving candidate (a fresh clone) and its enumeration index. With
// sp.Bound set, pruning runs on the incremental storage-cost accumulator
// (no per-node partial walk); otherwise a LowerBound closure is consulted
// per node. It returns the enumeration's statistics.
func enumerate(sp Space, lb LowerBound, best *incumbent, emit func(idx int, l catalog.Layout) error) (EnumStats, error) {
	var stats EnumStats
	partial := make(catalog.Layout)
	if sp.Base != nil {
		partial = sp.Base.Clone()
	}
	// Base may place the free objects too (ExhaustivePartial pins a full
	// layout); strip them so `partial` holds exactly the pinned plus the
	// already-assigned objects, as the LowerBound contract promises.
	for _, id := range sp.Free {
		delete(partial, id)
	}
	// Accumulator bound: seed with the pinned objects' storage cost, summed
	// in ascending dense order (deterministic — map iteration is not).
	accum := sp.Bound != nil
	var basePerHour float64
	if accum {
		for i := range sp.SizeGB {
			if c, ok := partial[catalog.ObjectID(i+1)]; ok {
				basePerHour += sp.PriceCents[c] * sp.SizeGB[i]
			}
		}
	}
	idx := 0
	var rec func(i int, perHour float64) error
	rec = func(i int, perHour float64) error {
		if i < 0 {
			err := emit(idx, partial.Clone())
			idx++
			return err
		}
		obj := sp.Free[i]
		defer delete(partial, obj)
		size := 0.0
		if accum {
			size = sp.SizeGB[catalog.DenseIndex(obj)]
		}
		for _, c := range sp.Classes {
			partial[obj] = c
			ph := perHour
			if accum {
				ph += sp.PriceCents[c] * size
				if inc, ok := best.toc(); ok {
					if floor, bounded := sp.Bound(ph, sp.Free[:i]); bounded && floor > inc {
						stats.BoundPruned++
						continue
					}
				}
			} else if lb != nil {
				if inc, ok := best.toc(); ok {
					floor, err := lb(partial, sp.Free[:i])
					if err != nil {
						return err
					}
					if floor > inc {
						stats.BoundPruned++
						continue
					}
				}
			}
			if err := rec(i-1, ph); err != nil {
				return err
			}
		}
		return nil
	}
	err := rec(len(sp.Free)-1, basePerHour)
	stats.Candidates = idx
	return stats, err
}

// Exhaustive enumerates the space and returns the feasible evaluation with
// the minimum TOC (ties to the earliest candidate in enumeration order),
// whether one exists, and the enumeration's statistics. Candidates fan out
// across the engine's worker pool; with a bound the evaluated count
// depends on how early the incumbent tightens (under parallel evaluation
// that timing varies), but the returned best never does.
func (e *Engine) Exhaustive(cons workload.Constraints, sp Space, lb LowerBound) (Eval, bool, EnumStats, error) {
	if len(sp.Classes) == 0 {
		return Eval{}, false, EnumStats{}, fmt.Errorf("search: exhaustive space has no classes")
	}
	if sp.Bound != nil && sp.SizeGB == nil {
		return Eval{}, false, EnumStats{}, fmt.Errorf("search: Space.Bound requires SizeGB/PriceCents")
	}
	best := &incumbent{}
	workers := e.Workers()
	if workers < 2 {
		stats, err := enumerate(sp, lb, best, func(idx int, l catalog.Layout) error {
			ev, err := e.Evaluate(l)
			if err != nil {
				return err
			}
			if ev.Feasible(cons) {
				best.offer(idx, ev)
			}
			return nil
		})
		if err != nil {
			return Eval{}, false, EnumStats{}, err
		}
		ev, ok := best.get()
		return ev, ok, stats, nil
	}

	type job struct {
		idx int
		l   catalog.Layout
	}
	jobs := make(chan job, workers*2)
	var (
		stop  atomic.Bool
		wg    sync.WaitGroup
		errMu sync.Mutex
		loErr error
		loIdx = int(^uint(0) >> 1) // max int
	)
	fail := func(idx int, err error) {
		errMu.Lock()
		if err != nil && idx < loIdx {
			loIdx, loErr = idx, err
		}
		errMu.Unlock()
		stop.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				ev, err := e.Evaluate(j.l)
				if err != nil {
					fail(j.idx, err)
					continue
				}
				if ev.Feasible(cons) {
					best.offer(j.idx, ev)
				}
			}
		}()
	}
	stats, genErr := enumerate(sp, lb, best, func(idx int, l catalog.Layout) error {
		if stop.Load() {
			return errStopped
		}
		jobs <- job{idx: idx, l: l}
		return nil
	})
	close(jobs)
	wg.Wait()
	errMu.Lock()
	err := loErr
	errMu.Unlock()
	if err == nil && genErr != nil && genErr != errStopped {
		err = genErr
	}
	if err != nil {
		return Eval{}, false, EnumStats{}, err
	}
	ev, ok := best.get()
	return ev, ok, stats, nil
}

// compactWalk drives the compiled DFS over a CompactSpace in the same
// odometer order as the map-path enumerate (Free[0] cycles fastest),
// maintaining the running per-hour storage-cost accumulator per assignment
// and pruning against it through sp.Bound. scratch is the shared in-place
// partial assignment; leaf calls emit with it fully assigned.
type compactWalk struct {
	sp       CompactSpace
	scratch  catalog.CompactLayout
	best     *incumbent
	bounding bool
	idx      int
	pruned   int
	emit     func(idx int, leafObj catalog.ObjectID, leafClass device.Class, first bool) error
}

func (w *compactWalk) run() error {
	if len(w.sp.Free) == 0 {
		err := w.emit(w.idx, 0, 0, true)
		w.idx++
		return err
	}
	var basePerHour float64
	if w.bounding {
		for i := 0; i < w.scratch.Len(); i++ {
			if c, ok := w.scratch.ClassAt(i); ok {
				basePerHour += w.sp.PriceCents[c] * w.sp.SizeGB[i]
			}
		}
	}
	return w.rec(len(w.sp.Free)-1, basePerHour)
}

// prune reports whether the subtree under the running cost can be cut.
func (w *compactWalk) prune(perHour float64, unassigned []catalog.ObjectID) bool {
	inc, ok := w.best.toc()
	if !ok {
		return false
	}
	floor, bounded := w.sp.Bound(perHour, unassigned)
	return bounded && floor > inc
}

func (w *compactWalk) rec(i int, perHour float64) error {
	obj := w.sp.Free[i]
	defer w.scratch.Unset(obj)
	size := 0.0
	if w.bounding {
		size = w.sp.SizeGB[catalog.DenseIndex(obj)]
	}
	if i == 0 {
		// Innermost level: siblings differ only in obj's class, so emit
		// carries the move for delta evaluation.
		first := true
		for _, c := range w.sp.Classes {
			w.scratch.Set(obj, c)
			if w.bounding && w.prune(perHour+w.sp.PriceCents[c]*size, w.sp.Free[:0]) {
				w.pruned++
				continue
			}
			if err := w.emit(w.idx, obj, c, first); err != nil {
				return err
			}
			w.idx++
			first = false
		}
		return nil
	}
	for _, c := range w.sp.Classes {
		w.scratch.Set(obj, c)
		ph := perHour
		if w.bounding {
			ph += w.sp.PriceCents[c] * size
			if w.prune(ph, w.sp.Free[:i]) {
				w.pruned++
				continue
			}
		}
		if err := w.rec(i-1, ph); err != nil {
			return err
		}
	}
	return nil
}

// ExhaustiveCompact is Exhaustive on the compiled path: candidates are
// generated by mutating one scratch compact layout (no per-node cloning),
// the storage-cost accumulator feeds the bound incrementally, and on the
// sequential path each innermost sibling is re-estimated as a one-move
// delta from its predecessor. Results are bit-identical to the map path at
// any worker count; with a Bound the evaluated count depends on how early
// the incumbent tightens, exactly as for Exhaustive.
func (e *Engine) ExhaustiveCompact(cons workload.Constraints, sp CompactSpace) (Eval, bool, EnumStats, error) {
	if e.cfg.Compiled == nil {
		return Eval{}, false, EnumStats{}, fmt.Errorf("search: ExhaustiveCompact on an engine without a compiled config")
	}
	if len(sp.Classes) == 0 {
		return Eval{}, false, EnumStats{}, fmt.Errorf("search: exhaustive space has no classes")
	}
	if sp.Bound != nil && sp.SizeGB == nil {
		return Eval{}, false, EnumStats{}, fmt.Errorf("search: CompactSpace.Bound requires SizeGB/PriceCents")
	}
	scratch := sp.Base.Clone()
	if scratch.IsZero() {
		scratch = catalog.NewCompactLayout(e.cfg.Compiled.Cat.NumObjects())
	}
	// Base may place the free objects too; strip them so the accumulator
	// covers exactly the pinned objects, as on the map path.
	for _, id := range sp.Free {
		scratch.Unset(id)
	}
	best := &incumbent{}
	w := &compactWalk{sp: sp, scratch: scratch, best: best, bounding: sp.Bound != nil}

	if e.Workers() < 2 {
		var (
			prev    Eval
			prevOK  bool
			prevCls device.Class
			moves   [1]workload.ObjectMove
		)
		w.emit = func(idx int, leafObj catalog.ObjectID, leafCls device.Class, first bool) error {
			// The first candidate of each innermost sibling group gets a full
			// compiled estimate (levels above Free[0] changed); its siblings
			// differ from it by one move and are re-estimated as deltas.
			if first {
				prevOK = false
			}
			var ev Eval
			var err error
			if prevOK {
				moves[0] = workload.ObjectMove{Obj: leafObj, From: prevCls, To: leafCls}
				ev, err = e.EvaluateDelta(prev, scratch, moves[:])
			} else {
				ev, err = e.EvaluateCompact(scratch)
			}
			if err != nil {
				return err
			}
			if ev.Feasible(cons) {
				best.offer(idx, ev)
			}
			prev, prevOK, prevCls = ev, true, leafCls
			return nil
		}
		if err := w.run(); err != nil {
			return Eval{}, false, EnumStats{}, err
		}
		ev, ok := best.get()
		return ev, ok, EnumStats{Candidates: w.idx, BoundPruned: w.pruned}, nil
	}

	type job struct {
		idx int
		cl  catalog.CompactLayout
	}
	workers := e.Workers()
	jobs := make(chan job, workers*2)
	var (
		stop  atomic.Bool
		wg    sync.WaitGroup
		errMu sync.Mutex
		loErr error
		loIdx = int(^uint(0) >> 1) // max int
	)
	fail := func(idx int, err error) {
		errMu.Lock()
		if err != nil && idx < loIdx {
			loIdx, loErr = idx, err
		}
		errMu.Unlock()
		stop.Store(true)
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				ev, err := e.evaluateCompact(j.cl, true, workload.Metrics{}, nil, nil)
				if err != nil {
					fail(j.idx, err)
					continue
				}
				if ev.Feasible(cons) {
					best.offer(j.idx, ev)
				}
			}
		}()
	}
	// Generator-local clone arena: the generator is a single goroutine, so
	// candidate copies are carved lock-free from chunks.
	var arena []byte
	cloneScratch := func() catalog.CompactLayout {
		b := scratch.Bytes()
		if len(arena) < len(b) {
			n := 1 << 16
			if n < len(b) {
				n = len(b)
			}
			arena = make([]byte, n)
		}
		out := arena[:len(b):len(b)]
		arena = arena[len(b):]
		copy(out, b)
		return catalog.CompactFromBytes(out)
	}
	w.emit = func(idx int, _ catalog.ObjectID, _ device.Class, _ bool) error {
		if stop.Load() {
			return errStopped
		}
		jobs <- job{idx: idx, cl: cloneScratch()}
		return nil
	}
	genErr := w.run()
	close(jobs)
	wg.Wait()
	errMu.Lock()
	err := loErr
	errMu.Unlock()
	if err == nil && genErr != nil && genErr != errStopped {
		err = genErr
	}
	if err != nil {
		return Eval{}, false, EnumStats{}, err
	}
	ev, ok := best.get()
	return ev, ok, EnumStats{Candidates: w.idx, BoundPruned: w.pruned}, nil
}
