package iosim

import (
	"testing"
	"testing/quick"
	"time"

	"dotprov/internal/catalog"
	"dotprov/internal/device"
	"dotprov/internal/types"
	"dotprov/internal/vclock"
)

func testSetup(t *testing.T) (*catalog.Catalog, *device.Box, catalog.Layout, catalog.ObjectID, catalog.ObjectID) {
	t.Helper()
	c := catalog.New()
	sch := types.NewSchema(types.Column{Name: "id", Kind: types.KindInt})
	tab, err := c.CreateTable("t", sch, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := c.CreateIndex("t_pkey", tab.ID, []string{"id"}, true)
	if err != nil {
		t.Fatal(err)
	}
	box := device.Box1()
	l := catalog.Layout{tab.ID: device.HSSD, ix.ID: device.HDDRAID0}
	return c, box, l, tab.ID, ix.ID
}

func TestChargeIOAdvancesClock(t *testing.T) {
	_, box, l, tabID, _ := testSetup(t)
	a, err := NewAccountant(box, l, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.ChargeIO(tabID, device.RandRead, 10)
	want := 10 * box.Device(device.HSSD).ServiceTime(device.RandRead, 1)
	if a.Now() != want {
		t.Fatalf("clock = %v, want %v", a.Now(), want)
	}
	if a.IOTime() != want {
		t.Fatalf("IOTime = %v, want %v", a.IOTime(), want)
	}
	if got := a.Profile().Get(tabID)[device.RandRead]; got != 10 {
		t.Fatalf("profile RR count = %g, want 10", got)
	}
}

func TestChargeIOUsesLayoutClass(t *testing.T) {
	_, box, l, tabID, ixID := testSetup(t)
	a, _ := NewAccountant(box, l, 300, nil)
	a.ChargeIO(ixID, device.SeqRead, 100)
	want := 100 * box.Device(device.HDDRAID0).ServiceTime(device.SeqRead, 300)
	if a.Now() != want {
		t.Fatalf("index I/O charged %v, want %v (HDD RAID0 @300)", a.Now(), want)
	}
	_ = tabID
}

func TestChargeCPU(t *testing.T) {
	_, box, l, _, _ := testSetup(t)
	a, _ := NewAccountant(box, l, 1, nil)
	a.ChargeCPU(5 * time.Millisecond)
	a.ChargeCPU(-time.Hour) // ignored
	if a.CPUTime() != 5*time.Millisecond || a.Now() != 5*time.Millisecond {
		t.Fatalf("CPU charge wrong: cpu=%v now=%v", a.CPUTime(), a.Now())
	}
}

func TestChargeZeroOrNegativeIgnored(t *testing.T) {
	_, box, l, tabID, _ := testSetup(t)
	a, _ := NewAccountant(box, l, 1, nil)
	a.ChargeIO(tabID, device.SeqRead, 0)
	a.ChargeIO(tabID, device.SeqRead, -5)
	if a.Now() != 0 || a.Profile().Get(tabID).Total() != 0 {
		t.Fatal("zero/negative charges should be ignored")
	}
}

func TestNewAccountantValidatesLayout(t *testing.T) {
	_, box, l, tabID, _ := testSetup(t)
	bad := l.Clone()
	bad[tabID] = device.HDD // Box 1 has no plain HDD
	if _, err := NewAccountant(box, bad, 1, nil); err == nil {
		t.Fatal("layout with class absent from box should fail")
	}
}

func TestChargeUnknownObjectPanics(t *testing.T) {
	_, box, l, _, _ := testSetup(t)
	a, _ := NewAccountant(box, l, 1, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for object not covered by layout")
		}
	}()
	a.ChargeIO(9999, device.SeqRead, 1)
}

func TestResetCountersKeepsClock(t *testing.T) {
	_, box, l, tabID, _ := testSetup(t)
	a, _ := NewAccountant(box, l, 1, nil)
	a.ChargeIO(tabID, device.SeqRead, 100)
	before := a.Now()
	a.ResetCounters()
	if a.Now() != before {
		t.Fatal("ResetCounters must not rewind the clock")
	}
	if a.IOTime() != 0 || a.CPUTime() != 0 || len(a.Profile()) != 0 {
		t.Fatal("counters not cleared")
	}
}

func TestSharedClockAcrossAccountants(t *testing.T) {
	_, box, l, tabID, ixID := testSetup(t)
	clk := &vclock.Clock{}
	a1, _ := NewAccountant(box, l, 1, clk)
	a2, _ := NewAccountant(box, l, 1, clk)
	a1.ChargeIO(tabID, device.SeqRead, 1)
	a2.ChargeIO(ixID, device.SeqRead, 1)
	if clk.Now() != a1.Now() || a1.Now() != a2.Now() {
		t.Fatal("shared clock should accumulate both workers")
	}
}

func TestProfileMergeCloneScale(t *testing.T) {
	p := NewProfile()
	p.Add(1, device.SeqRead, 10)
	p.Add(2, device.RandWrite, 4)
	q := NewProfile()
	q.Add(1, device.SeqRead, 5)
	q.Add(3, device.RandRead, 2)
	p.Merge(q)
	if p.Get(1)[device.SeqRead] != 15 || p.Get(3)[device.RandRead] != 2 {
		t.Fatalf("merge wrong: %+v", p)
	}
	cl := p.Clone()
	cl.Add(1, device.SeqRead, 100)
	if p.Get(1)[device.SeqRead] != 15 {
		t.Fatal("clone mutated original")
	}
	p.Scale(2)
	if p.Get(2)[device.RandWrite] != 8 {
		t.Fatal("scale wrong")
	}
}

func TestProfileIOTime(t *testing.T) {
	_, box, l, tabID, ixID := testSetup(t)
	p := NewProfile()
	p.Add(tabID, device.RandRead, 100)
	p.Add(ixID, device.SeqRead, 1000)
	got, err := p.IOTime(l, box, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 100*box.Device(device.HSSD).ServiceTime(device.RandRead, 1) +
		1000*box.Device(device.HDDRAID0).ServiceTime(device.SeqRead, 1)
	if got != want {
		t.Fatalf("IOTime = %v, want %v", got, want)
	}
	// Unplaced object errors.
	p.Add(777, device.SeqRead, 1)
	if _, err := p.IOTime(l, box, 1); err == nil {
		t.Fatal("IOTime with unplaced object should fail")
	}
}

func TestObjectIOTime(t *testing.T) {
	p := NewProfile()
	p.Add(5, device.RandWrite, 3)
	d := device.New(device.LSSD)
	got := p.ObjectIOTime(5, d, 1)
	if got != 3*d.ServiceTime(device.RandWrite, 1) {
		t.Fatalf("ObjectIOTime = %v", got)
	}
	if p.ObjectIOTime(999, d, 1) != 0 {
		t.Fatal("absent object should cost zero")
	}
}

// Property: accountant time equals profile-derived time for any I/O mix.
// This is the consistency contract between live charging (executor) and
// profile-based estimation (optimizer/DOT).
func TestAccountantProfileConsistencyProperty(t *testing.T) {
	_, box, l, tabID, ixID := testSetup(t)
	objs := []catalog.ObjectID{tabID, ixID}
	f := func(ops []uint16) bool {
		a, err := NewAccountant(box, l, 42, nil)
		if err != nil {
			return false
		}
		for i, op := range ops {
			obj := objs[i%2]
			ty := device.AllIOTypes[int(op)%4]
			a.ChargeIO(obj, ty, int64(op%7))
		}
		want, err := a.Profile().IOTime(l, box, 42)
		if err != nil {
			return false
		}
		diff := a.IOTime() - want
		if diff < 0 {
			diff = -diff
		}
		// Allow tiny rounding from float multiplication.
		return diff <= time.Duration(len(ops)+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIOVector(t *testing.T) {
	var v IOVector
	v.Add(IOVector{1, 2, 3, 4})
	v.Add(IOVector{1, 0, 0, 0})
	if v.Total() != 11 || v[device.SeqRead] != 2 {
		t.Fatalf("IOVector wrong: %+v", v)
	}
}

// batchingTap is a fake write-combining tap: charges buffer privately and
// publish only on Flush, mimicking a collector lane.
type batchingTap struct {
	buffered  int64
	published int64
	flushes   int
}

func (b *batchingTap) ChargeIO(catalog.ObjectID, device.IOType, int64) { b.buffered++ }
func (b *batchingTap) ChargePageIO(catalog.ObjectID, device.IOType, int64, int64) {
	b.buffered++
}
func (b *batchingTap) Flush() {
	b.published += b.buffered
	b.buffered = 0
	b.flushes++
}

// TestAccountantFlushesBatchingTap pins the Flusher contract: reading any
// of the accountant's results publishes the tap's batch, so a driver that
// merges a session's profile at run end has also pushed the session's tail
// of tap charges to the observation plane.
func TestAccountantFlushesBatchingTap(t *testing.T) {
	_, box, l, tabID, _ := testSetup(t)
	a, _ := NewAccountant(box, l, 1, nil)
	tap := &batchingTap{}
	a.SetTap(tap)
	a.ChargeIO(tabID, device.RandRead, 1)
	a.ChargePageIO(tabID, device.SeqRead, 3, 1)
	if tap.published != 0 {
		t.Fatalf("tap published %d charges before any result read", tap.published)
	}
	_ = a.Profile()
	if tap.published != 2 || tap.buffered != 0 {
		t.Fatalf("after Profile(): published=%d buffered=%d, want 2/0", tap.published, tap.buffered)
	}
	a.ChargeIO(tabID, device.SeqWrite, 1)
	_ = a.IOTime()
	if tap.published != 3 {
		t.Fatalf("after IOTime(): published=%d, want 3", tap.published)
	}
	// Re-tapping flushes the batch owed to the old tap.
	a.ChargeIO(tabID, device.SeqWrite, 1)
	a.SetTap(nil)
	if tap.published != 4 {
		t.Fatalf("after SetTap(nil): published=%d, want 4", tap.published)
	}
}
