package search

import (
	"sync"
	"sync/atomic"

	"dotprov/internal/catalog"
	"dotprov/internal/workload"
)

// MemoEstimator wraps an Estimator with a metrics memo keyed by the
// canonical layout hash (catalog.Layout.Key). It is the sweep-level sibling
// of the Engine's memo: an Engine caches full evaluations (metrics + TOC +
// capacity), which are only valid for one box and one cost model, whereas
// the estimator's metrics depend solely on the layout and the per-class
// service times. A provisioning sweep therefore shares ONE MemoEstimator
// across every candidate configuration's engine: a layout estimated while
// searching candidate A is answered from the memo when candidate B's search
// reaches it, even though the two candidates price and capacity-check it
// differently.
//
// The wrapped estimator must be safe for concurrent use when the memo is
// driven from multiple goroutines (the workload.Estimator contract). Errors
// are memoized like results. A MemoEstimator is safe for concurrent use.
type MemoEstimator struct {
	est   workload.Estimator
	limit int
	mu    sync.Mutex
	memo  map[string]*memoEntry
	calls atomic.Int64
}

type memoEntry struct {
	once sync.Once
	m    workload.Metrics
	err  error
}

// Memoize wraps est. The limit bounds retained entries as in
// Config.MemoLimit: 0 selects DefaultMemoLimit, negative means unlimited;
// once full, further distinct layouts are estimated without caching.
func Memoize(est workload.Estimator, limit int) *MemoEstimator {
	if limit == 0 {
		limit = DefaultMemoLimit
	}
	return &MemoEstimator{est: est, limit: limit, memo: make(map[string]*memoEntry)}
}

// Estimate implements workload.Estimator.
func (me *MemoEstimator) Estimate(l catalog.Layout) (workload.Metrics, error) {
	key := l.Key()
	me.mu.Lock()
	ent, ok := me.memo[key]
	if !ok {
		if me.limit >= 0 && len(me.memo) >= me.limit {
			me.mu.Unlock()
			me.calls.Add(1)
			return me.est.Estimate(l)
		}
		ent = &memoEntry{}
		me.memo[key] = ent
	}
	me.mu.Unlock()
	ent.once.Do(func() {
		me.calls.Add(1)
		ent.m, ent.err = me.est.Estimate(l)
	})
	return ent.m, ent.err
}

// Calls returns the number of underlying estimator invocations (memo
// misses) so far.
func (me *MemoEstimator) Calls() int { return int(me.calls.Load()) }
