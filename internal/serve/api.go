package serve

import (
	"fmt"
	"time"

	"dotprov/internal/catalog"
	"dotprov/internal/core"
	"dotprov/internal/device"
	"dotprov/internal/iosim"
	"dotprov/internal/provision"
	"dotprov/internal/search"
	"dotprov/internal/types"
	"dotprov/internal/workload"
)

// ObjectSpec declares one database object of the advised workload.
type ObjectSpec struct {
	Name string `json:"name"`
	// Kind is "table" (default), "index", "temp" or "log". Indexes must name
	// their owning table; DOT groups a table with its indexes (§3.2).
	Kind      string `json:"kind,omitempty"`
	Table     string `json:"table,omitempty"`
	SizeBytes int64  `json:"size_bytes"`
	// Extents optionally declares the object's access-locality histogram:
	// contiguous byte runs from offset 0 with their relative access heat.
	// Partition-granular requests split objects on these extents; objects
	// without extents stay whole. Ignored at object granularity.
	Extents []ExtentSpec `json:"extents,omitempty"`
}

// ExtentSpec is one contiguous slice of an object with its observed access
// heat (a relative weight; only ratios matter).
type ExtentSpec struct {
	SizeBytes int64   `json:"size_bytes"`
	Heat      float64 `json:"heat"`
}

// IOSpec is one object's I/O counts over the whole workload — the profile
// chi_r[o] of §3.3: reads in page I/Os, writes in rows, as measured (or
// estimated) on the profiled layout.
type IOSpec struct {
	Object    string  `json:"object"`
	SeqRead   float64 `json:"seq_read,omitempty"`
	RandRead  float64 `json:"rand_read,omitempty"`
	SeqWrite  float64 `json:"seq_write,omitempty"`
	RandWrite float64 `json:"rand_write,omitempty"`
}

// WorkloadSpec is the wire form of a profiled workload: the objects, the
// observed I/O profile, CPU time, and the degree of concurrency. When Txns
// is set the workload is transactional (OLTP) and the advisor optimizes
// cents/transaction against a throughput SLA; otherwise it is a DSS
// workload optimized for cents/run against an elapsed-time SLA.
type WorkloadSpec struct {
	Objects     []ObjectSpec `json:"objects"`
	IO          []IOSpec     `json:"io"`
	CPUMillis   float64      `json:"cpu_millis,omitempty"`
	Concurrency int          `json:"concurrency,omitempty"`
	// OLTP test-run numbers: committed transactions and elapsed virtual time
	// of the profiled run (§4.5's single test run).
	Txns          int64   `json:"txns,omitempty"`
	ElapsedMillis float64 `json:"elapsed_millis,omitempty"`
}

// AdviseRequest asks for a single-workload DOT recommendation on a fixed
// box.
type AdviseRequest struct {
	Workload WorkloadSpec `json:"workload"`
	// Box selects a built-in configuration: "box1" (default), "box2" or
	// "htap" (the striped-HDD mixed box whose sequential scans beat the
	// H-SSD, the setting where replication pays).
	Box string `json:"box,omitempty"`
	// Classes overrides Box with an explicit class list, e.g.
	// ["hdd", "lssd", "hssd"] (see device.ParseClass for accepted names).
	Classes []string `json:"classes,omitempty"`
	SLA     float64  `json:"sla"`
	// Alpha selects the §5.2 discrete-sized cost model blend; 0 (default)
	// is the paper's linear model.
	Alpha float64 `json:"alpha,omitempty"`
	// Granularity selects the unit of placement: "object" (default) places
	// whole objects; "partition" splits objects into heat-based page-range
	// units on the declared extents, so a hot head can land on a fast
	// class while the cold tail ships to a cheap one.
	Granularity string `json:"granularity,omitempty"`
	// Exhaustive runs the branch-and-bound enumeration instead of the
	// greedy DOT sweeps: the provably optimal layout, at enumeration cost
	// (the server refuses spaces whose canonical size exceeds the
	// core.MaxExhaustiveLayouts cap). The response then carries Search
	// statistics.
	Exhaustive bool `json:"exhaustive,omitempty"`
	// Replication turns on replica-set placement: a unit may hold copies on
	// several storage classes, each read pattern routes to its best replica
	// and every write lands on all copies. The response then carries the
	// per-unit copy lists in Replicas. Prices only the paper's linear cost
	// model, so Alpha must be 0.
	Replication bool `json:"replication,omitempty"`
	// MaxReplicas caps the copies per unit when Replication is set; values
	// below 1 mean no cap (up to one copy per storage class).
	MaxReplicas int `json:"max_replicas,omitempty"`
}

// AdviseResponse reports the recommendation.
type AdviseResponse struct {
	Feasible bool   `json:"feasible"`
	Failure  string `json:"failure,omitempty"`
	// Granularity echoes the effective placement granularity; at
	// "partition" the layout keys are unit names ("orders[0:1024)").
	Granularity string `json:"granularity,omitempty"`
	// Units is the number of placement units searched (partition
	// granularity only); SplitObjects counts objects whose units landed on
	// more than one class.
	Units             int               `json:"units,omitempty"`
	SplitObjects      int               `json:"split_objects,omitempty"`
	Layout            map[string]string `json:"layout,omitempty"`
	TOCCents          float64           `json:"toc_cents"`
	ElapsedMillis     float64           `json:"elapsed_millis,omitempty"`
	ThroughputPerHour float64           `json:"throughput_per_hour,omitempty"`
	Evaluated         int               `json:"evaluated"`
	EstimatorCalls    int               `json:"estimator_calls"`
	PlanMillis        float64           `json:"plan_millis"`
	// Search carries the enumeration's work profile when the advisor ran a
	// branch-and-bound or pruned exhaustive walk; absent for the greedy
	// optimizer's hill-climbing searches.
	Search *SearchStatsOut `json:"search,omitempty"`
	// Replicas maps each unit to its recommended copy classes when the
	// request asked for replication; a single-entry list is a single-copy
	// placement. Layout is then populated only when every unit collapsed to
	// one copy.
	Replicas map[string][]string `json:"replicas,omitempty"`
	// MaxCopies is the largest replica count of any unit, and
	// ReplicatedCopies counts the extra copies placed beyond one per unit
	// (both replication requests only).
	MaxCopies        int `json:"max_copies,omitempty"`
	ReplicatedCopies int `json:"replicated_copies,omitempty"`
}

// SearchStatsOut is the wire form of the exhaustive enumeration's work
// profile: how many candidates were actually evaluated, how many subtrees
// the cost floor discarded, how symmetric units collapsed the space, and
// how tight the root bound was.
type SearchStatsOut struct {
	Candidates     int     `json:"candidates"`
	BoundPruned    int     `json:"bound_pruned,omitempty"`
	Groups         int     `json:"dominance_groups,omitempty"`
	GroupedUnits   int     `json:"dominance_units,omitempty"`
	SpaceSize      float64 `json:"space_size,omitempty"`
	CanonicalSize  float64 `json:"canonical_size,omitempty"`
	RootFloorCents float64 `json:"root_floor_cents,omitempty"`
}

// GridDeviceSpec is one axis of the provisioning grid: a storage class and
// its allowed unit counts (0 = the class may be absent).
type GridDeviceSpec struct {
	Class  string `json:"class"`
	Counts []int  `json:"counts"`
}

// GridSpec is the wire form of provision.Grid.
type GridSpec struct {
	Devices    []GridDeviceSpec `json:"devices"`
	Alphas     []float64        `json:"alphas,omitempty"`
	MaxClasses int              `json:"max_classes,omitempty"`
}

// ProvisionRequest asks for a full §5 configuration sweep.
type ProvisionRequest struct {
	Workload WorkloadSpec `json:"workload"`
	Grid     GridSpec     `json:"grid"`
	SLA      float64      `json:"sla"`
	// Granularity selects the unit of placement for every candidate's
	// inner search (see AdviseRequest.Granularity).
	Granularity string `json:"granularity,omitempty"`
}

// CandidateOut is one sweep candidate's outcome.
type CandidateOut struct {
	Name     string            `json:"name"`
	Alpha    float64           `json:"alpha"`
	Feasible bool              `json:"feasible"`
	Failure  string            `json:"failure,omitempty"`
	TOCCents float64           `json:"toc_cents"`
	Layout   map[string]string `json:"layout,omitempty"` // feasible candidates only
}

// ProvisionResponse reports the sweep: the winning candidate index (-1 when
// nothing is feasible) and every candidate's outcome.
type ProvisionResponse struct {
	Best           int            `json:"best"`
	Cached         bool           `json:"cached"`
	Candidates     []CandidateOut `json:"candidates"`
	Evaluated      int            `json:"evaluated"`
	EstimatorCalls int            `json:"estimator_calls"`
}

// HealthResponse is the /healthz body.
type HealthResponse struct {
	Status        string `json:"status"`
	UptimeSeconds int64  `json:"uptime_seconds"`
	Served        int64  `json:"served"`
	CacheHits     int64  `json:"cache_hits"`
	Rejected      int64  `json:"rejected"`
	// Online advising counters: defined streams, profile windows ingested
	// via /observe, and re-advise decisions that adopted a changed layout.
	Streams   int   `json:"streams"`
	Observed  int64 `json:"observed"`
	ReAdvised int64 `json:"readvised"`
	// Binary ingest-plane counters: frames admitted but not yet folded,
	// frames folded into stream windows, and observe requests shed with
	// 429 because the bounded queue was full.
	Queued   int64 `json:"queued"`
	Ingested int64 `json:"ingested"`
	Shed     int64 `json:"shed"`
	// Crash-safety counters: background panics recovered, snapshot
	// generations written and writes failed, the newest published
	// generation (0 before the first), and streams restored from a
	// snapshot at boot.
	Panics        int64  `json:"panics"`
	Snapshots     int64  `json:"snapshots"`
	SnapshotFails int64  `json:"snapshot_failures"`
	SnapshotGen   uint64 `json:"snapshot_generation"`
	Restored      int64  `json:"restored_streams"`
	// Fleet-plane counters: the shard-ring width, the fleet advise memo's
	// hit/miss totals, and the idle-eviction lifecycle (streams evicted to
	// parked records, parked records rematerialized on touch).
	Shards         int   `json:"shards"`
	MemoHits       int64 `json:"memo_hits"`
	MemoMisses     int64 `json:"memo_misses"`
	Evicted        int64 `json:"evicted_streams"`
	Rematerialized int64 `json:"rematerialized_streams"`
}

// ReadyResponse is the /v1/readyz body — readiness, deliberately split
// from liveness: /v1/healthz answers 200 whenever the process serves,
// while readyz answers 503 when the server should get no NEW work
// (draining out for shutdown, or degraded because snapshots persistently
// fail).
type ReadyResponse struct {
	Ready bool `json:"ready"`
	// State is "ready", "draining" or "degraded".
	State string `json:"state"`
	// Reason explains a not-ready state, "" when ready.
	Reason string `json:"reason,omitempty"`
}

// compiled is a WorkloadSpec lowered onto the in-process model: a catalog,
// the workload profile, and the name mapping for rendering layouts back.
type compiled struct {
	cat     *catalog.Catalog
	profile iosim.Profile
	names   map[catalog.ObjectID]string
	spec    WorkloadSpec
}

// compileWorkload validates the spec and builds the catalog + profile.
func compileWorkload(spec WorkloadSpec) (*compiled, error) {
	if len(spec.Objects) == 0 {
		return nil, fmt.Errorf("workload declares no objects")
	}
	if spec.Concurrency < 0 {
		return nil, fmt.Errorf("concurrency must be >= 0")
	}
	if spec.Txns < 0 || spec.CPUMillis < 0 || spec.ElapsedMillis < 0 {
		return nil, fmt.Errorf("txns, cpu_millis and elapsed_millis must be >= 0")
	}
	if spec.Txns > 0 && spec.ElapsedMillis <= 0 {
		return nil, fmt.Errorf("transactional workloads (txns > 0) need elapsed_millis of the test run")
	}
	cat := catalog.New()
	names := make(map[catalog.ObjectID]string)
	// Synthetic single-column schema: serve placements care about object
	// sizes and I/O counts, not row formats.
	schema := types.NewSchema(types.Column{Name: "k", Kind: types.KindInt})
	tables := make(map[string]*catalog.Table)
	for _, o := range spec.Objects {
		if o.SizeBytes < 0 {
			return nil, fmt.Errorf("object %q: size_bytes must be >= 0", o.Name)
		}
		var extBytes int64
		for i, e := range o.Extents {
			if e.SizeBytes <= 0 || e.Heat < 0 {
				return nil, fmt.Errorf("object %q extent %d: size_bytes must be > 0 and heat >= 0", o.Name, i)
			}
			extBytes += e.SizeBytes
		}
		// Extents may under-cover the object (the remainder partitions as a
		// cold tail) but never over-declare it: silently clamping would skew
		// the heat attribution the client asked for.
		if extBytes > o.SizeBytes {
			return nil, fmt.Errorf("object %q: extents declare %d bytes but the object has %d", o.Name, extBytes, o.SizeBytes)
		}
		kind := o.Kind
		if kind == "" {
			kind = "table"
		}
		var id catalog.ObjectID
		switch kind {
		case "table":
			t, err := cat.CreateTable(o.Name, schema, nil)
			if err != nil {
				return nil, err
			}
			tables[o.Name] = t
			id = t.ID
		case "index":
			t, ok := tables[o.Table]
			if !ok {
				return nil, fmt.Errorf("index %q: owning table %q not declared before it", o.Name, o.Table)
			}
			ix, err := cat.CreateIndex(o.Name, t.ID, []string{"k"}, false)
			if err != nil {
				return nil, err
			}
			id = ix.ID
		case "temp", "log":
			k := catalog.KindTemp
			if kind == "log" {
				k = catalog.KindLog
			}
			aux, err := cat.CreateAux(o.Name, k, o.SizeBytes)
			if err != nil {
				return nil, err
			}
			id = aux.ID
		default:
			return nil, fmt.Errorf("object %q: unknown kind %q (want table, index, temp or log)", o.Name, kind)
		}
		cat.SetSize(id, o.SizeBytes)
		names[id] = o.Name
	}
	profile := iosim.NewProfile()
	for _, io := range spec.IO {
		o := cat.Lookup(io.Object)
		if o == nil {
			return nil, fmt.Errorf("io entry references undeclared object %q", io.Object)
		}
		if io.SeqRead < 0 || io.RandRead < 0 || io.SeqWrite < 0 || io.RandWrite < 0 {
			return nil, fmt.Errorf("io entry for %q has negative counts", io.Object)
		}
		profile.Add(o.ID, device.SeqRead, io.SeqRead)
		profile.Add(o.ID, device.RandRead, io.RandRead)
		profile.Add(o.ID, device.SeqWrite, io.SeqWrite)
		profile.Add(o.ID, device.RandWrite, io.RandWrite)
	}
	return &compiled{cat: cat, profile: profile, names: names, spec: spec}, nil
}

func (c *compiled) concurrency() int {
	if c.spec.Concurrency < 1 {
		return 1
	}
	return c.spec.Concurrency
}

// estimator builds the workload's estimator bound to the given box: the
// test-run-profile path (§4.5) for transactional specs, the observed-counts
// path for DSS specs. Both are pure readers, so they satisfy the engine's
// concurrency contract.
func (c *compiled) estimator(box *device.Box) (workload.Estimator, error) {
	if len(box.Devices) == 0 {
		return nil, fmt.Errorf("box %q has no devices", box.Name)
	}
	cpu := time.Duration(c.spec.CPUMillis * float64(time.Millisecond))
	if c.spec.Txns > 0 {
		profiled := catalog.NewUniformLayout(c.cat, box.MostExpensive().Class)
		return workload.NewProfileEstimator(box, c.concurrency(), c.profile, cpu,
			workload.RunStats{
				Txns:    c.spec.Txns,
				Elapsed: time.Duration(c.spec.ElapsedMillis * float64(time.Millisecond)),
			}, profiled)
	}
	return &workload.ObservedEstimator{
		Box:         box,
		Concurrency: c.concurrency(),
		PerQuery:    []workload.QueryObservation{{Profile: c.profile, CPU: cpu}},
	}, nil
}

// input assembles the core.Input for this workload on a box, under the
// server-wide search worker budget. The estimator is compiled here — once
// per request — so every engine the request fans out to (OptimizeBest's
// sweeps, a provisioning sweep's candidates) reuses the same dense time
// tables on the search engine's compact/delta fast path.
func (c *compiled) input(box *device.Box, budget *search.Budget) (core.Input, error) {
	est, err := c.estimator(box)
	if err != nil {
		return core.Input{}, err
	}
	est = workload.CompileEstimator(est, c.cat)
	ps := core.NewProfileSet()
	ps.SetSingle(c.profile)
	return core.Input{
		Cat:         c.cat,
		Box:         box,
		Est:         est,
		Profiles:    ps,
		Concurrency: c.concurrency(),
		Budget:      budget,
	}, nil
}

// renderSetLayout maps a replicated layout back to object names -> copy
// class name lists (device.ClassSet member order).
func (c *compiled) renderSetLayout(sl catalog.SetLayout) map[string][]string {
	out := make(map[string][]string, len(sl))
	for id, set := range sl {
		if name, ok := c.names[id]; ok {
			out[name] = classNames(set)
		}
	}
	return out
}

// classNames renders a class set's members as wire class names.
func classNames(set device.ClassSet) []string {
	members := set.Classes()
	names := make([]string, len(members))
	for i, cls := range members {
		names[i] = cls.String()
	}
	return names
}

// renderLayout maps a layout back to object names -> class names.
func (c *compiled) renderLayout(l catalog.Layout) map[string]string {
	out := make(map[string]string, len(l))
	for id, cls := range l {
		if name, ok := c.names[id]; ok {
			out[name] = cls.String()
		}
	}
	return out
}

// hashObjects digests the object list (name, kind, grouping, size,
// extents) into f. It is the single definition both fingerprints build
// on, so the stream-pinning and cache-keying digests can never diverge on
// a future ObjectSpec field.
func (c *compiled) hashObjects(f *workload.Fingerprint) {
	f.Int(int64(len(c.spec.Objects)))
	for _, o := range c.spec.Objects {
		f.String(o.Name).String(o.Kind).String(o.Table).Int(o.SizeBytes)
		f.Int(int64(len(o.Extents)))
		for _, e := range o.Extents {
			f.Int(e.SizeBytes).Float(e.Heat)
		}
	}
}

// objectsFingerprint digests only the object list (name, kind, grouping,
// size, extents). Online streams pin it at definition time: later
// /observe windows must ship the identical schema, only the observation
// varies.
func (c *compiled) objectsFingerprint() string {
	f := workload.NewFingerprint()
	c.hashObjects(f)
	return f.Sum()
}

// fingerprint digests the estimator-relevant content of the spec for cache
// keying: objects (name, kind, size, grouping), profile, CPU, concurrency
// and test-run numbers.
func (c *compiled) fingerprint() string {
	f := workload.NewFingerprint()
	c.hashObjects(f)
	f.Profile(c.profile)
	f.Float(c.spec.CPUMillis)
	f.Int(int64(c.concurrency()))
	f.Int(c.spec.Txns)
	f.Float(c.spec.ElapsedMillis)
	return f.Sum()
}

// searchCatalog returns the catalog a request's search actually runs on:
// the partitioning's unit catalog at partition granularity, the compiled
// object catalog otherwise. Cost models and infeasibility diagnostics must
// be computed over this catalog — at partition granularity an object too
// big for every class may still fit split.
func searchCatalog(comp *compiled, pt *catalog.Partitioning) *catalog.Catalog {
	if pt != nil {
		return pt.UnitCatalog()
	}
	return comp.cat
}

// partitioning builds the heat-based partitioning from the spec's declared
// extents (objects without extents stay whole).
func (c *compiled) partitioning() (*catalog.Partitioning, error) {
	stats := catalog.ExtentStats{
		PageBytes: catalog.DefaultPageBytes,
		ByObject:  make(map[catalog.ObjectID][]catalog.Extent),
	}
	for _, o := range c.spec.Objects {
		if len(o.Extents) == 0 {
			continue
		}
		obj := c.cat.Lookup(o.Name)
		if obj == nil {
			continue
		}
		// Page boundaries come from cumulative byte offsets, so per-extent
		// rounding cannot inflate boundaries and push later extents (and
		// their declared heat) off the end of the object. A slice too small
		// to cross a page boundary folds its heat into the extent that owns
		// that page instead of occupying a page of its own.
		var offset, page int64
		for _, e := range o.Extents {
			offset += e.SizeBytes
			end := (offset + stats.PageBytes - 1) / stats.PageBytes
			exts := stats.ByObject[obj.ID]
			if end <= page {
				// offset > 0 makes end >= 1, so the first extent always
				// emits; a non-advancing slice therefore has a predecessor.
				exts[len(exts)-1].Count += e.Heat
				continue
			}
			stats.ByObject[obj.ID] = append(exts, catalog.Extent{Pages: end - page, Count: e.Heat})
			page = end
		}
	}
	return catalog.BuildPartitioning(c.cat, stats, catalog.PartitionOptions{})
}

// renderUnitLayout maps a unit-granular layout to unit names -> class
// names.
func renderUnitLayout(pt *catalog.Partitioning, l catalog.Layout) map[string]string {
	out := make(map[string]string, len(l))
	for id, cls := range l {
		if u := pt.Unit(id); u.Name != "" {
			out[u.Name] = cls.String()
		}
	}
	return out
}

// renderUnitSetLayout maps a replicated unit layout onto unit names ->
// copy class name lists.
func renderUnitSetLayout(pt *catalog.Partitioning, sl catalog.SetLayout) map[string][]string {
	out := make(map[string][]string, len(sl))
	for id, set := range sl {
		if u := pt.Unit(id); u.Name != "" {
			out[u.Name] = classNames(set)
		}
	}
	return out
}

// parseGranularity validates a wire granularity value and reports whether
// partition-granular placement was requested.
func parseGranularity(s string) (bool, error) {
	switch s {
	case "", "object":
		return false, nil
	case "partition":
		return true, nil
	default:
		return false, fmt.Errorf("unknown granularity %q (want object or partition)", s)
	}
}

// parseGrid lowers a GridSpec onto provision.Grid.
func parseGrid(spec GridSpec) (provision.Grid, error) {
	g := provision.Grid{Alphas: spec.Alphas, MaxClasses: spec.MaxClasses}
	for _, d := range spec.Devices {
		cls, err := device.ParseClass(d.Class)
		if err != nil {
			return provision.Grid{}, err
		}
		g.Devices = append(g.Devices, provision.DeviceOption{Class: cls, Counts: d.Counts})
	}
	if err := g.Validate(); err != nil {
		return provision.Grid{}, err
	}
	return g, nil
}

// parseBox resolves an AdviseRequest's box selection.
func parseBox(req AdviseRequest) (*device.Box, error) {
	if len(req.Classes) > 0 {
		b := &device.Box{Name: "custom"}
		seen := make(map[device.Class]bool)
		for _, s := range req.Classes {
			cls, err := device.ParseClass(s)
			if err != nil {
				return nil, err
			}
			if seen[cls] {
				return nil, fmt.Errorf("class %q listed twice", s)
			}
			seen[cls] = true
			b.Devices = append(b.Devices, device.New(cls))
		}
		return b, nil
	}
	switch req.Box {
	case "", "box1", "1":
		return device.Box1(), nil
	case "box2", "2":
		return device.Box2(), nil
	case "htap":
		return device.BoxHTAP(), nil
	default:
		return nil, fmt.Errorf("unknown box %q (want box1, box2 or htap, or set classes)", req.Box)
	}
}
