package core

import (
	"fmt"
	"time"

	"dotprov/internal/catalog"
	"dotprov/internal/device"
	"dotprov/internal/search"
)

// MaxExhaustiveLayouts bounds the M^N enumeration. The paper estimates
// ~3500 hours for the full 16-object TPC-H catalog (§4.4.3) and restricts
// ES to 8 objects; we refuse anything beyond this many layouts.
const MaxExhaustiveLayouts = 5_000_000

// Exhaustive enumerates every layout L: O -> D and returns the feasible one
// with minimum estimated TOC, using the same estimator and constraints as
// DOT. It is the quality yardstick of §4.4.3/§4.5.3. Candidates fan out
// across Input.Workers goroutines, and an Input.LowerBound hook prunes
// assignment subtrees whose TOC floor already exceeds the incumbent; both
// leave the result byte-identical to the sequential, unpruned enumeration.
func Exhaustive(in Input, opts Options) (*Result, error) {
	eng, err := in.engine()
	if err != nil {
		return nil, err
	}
	return exhaustiveWith(in, opts, eng)
}

// exhaustiveWith is Exhaustive against a caller-supplied engine, so
// ExhaustiveRelaxing's SLA halvings share one memo table: a layout
// estimated at one SLA level is only re-checked, never re-estimated, at
// the next.
func exhaustiveWith(in Input, opts Options, eng *search.Engine) (*Result, error) {
	objs := in.Cat.Objects()
	n, m := len(objs), len(in.Box.Classes())
	total := 1.0
	for i := 0; i < n; i++ {
		total *= float64(m)
		if total > MaxExhaustiveLayouts {
			return nil, fmt.Errorf("core: exhaustive search over %d objects x %d classes exceeds the %d-layout bound",
				n, m, MaxExhaustiveLayouts)
		}
	}
	free := make([]catalog.ObjectID, n)
	for i, o := range objs {
		free[i] = o.ID
	}
	return exhaustSpace(in, opts, eng, free, nil)
}

// ExhaustivePartial enumerates placements for only the given objects,
// keeping every other object pinned at base. It makes the ES comparison
// tractable for catalogs whose full M^N space is out of reach (the TPC-C
// comparison of §4.5.3: we free the objects with the highest I/O pressure
// and pin the tiny remainder).
func ExhaustivePartial(in Input, opts Options, free []catalog.ObjectID, base catalog.Layout) (*Result, error) {
	eng, err := in.engine()
	if err != nil {
		return nil, err
	}
	n, m := len(free), len(in.Box.Classes())
	total := 1.0
	for i := 0; i < n; i++ {
		total *= float64(m)
		if total > MaxExhaustiveLayouts {
			return nil, fmt.Errorf("core: partial exhaustive search over %d objects exceeds the bound", n)
		}
	}
	return exhaustSpace(in, opts, eng, free, base)
}

// exhaustSpace is the one enumeration loop behind Exhaustive and
// ExhaustivePartial: derive the constraints from L0, sweep the assignment
// space through the shared engine — the compiled DFS with its running
// accumulators when the engine carries the compact path, the map
// enumeration otherwise — and fall back to the pinned starting point when
// nothing is feasible.
func exhaustSpace(in Input, opts Options, eng *search.Engine, free []catalog.ObjectID, base catalog.Layout) (*Result, error) {
	start := time.Now()
	stats0 := eng.Stats()
	_, ev0, cons, err := in.prep(opts, eng)
	if err != nil {
		return nil, err
	}
	res := &Result{Constraints: cons}
	throughput := ev0.Metrics.Throughput > 0

	var (
		best      search.Eval
		found     bool
		evaluated int
	)
	if csp, ok := in.compactSpace(eng, free, base, throughput); ok {
		best, found, evaluated, err = eng.ExhaustiveCompact(cons, csp)
	} else {
		sp := search.Space{Base: base, Free: free, Classes: in.Box.Classes()}
		lb := in.LowerBound
		if throughput {
			// Throughput (OLTP) workloads price TOC as C(L)/T, not C(L)*t, so
			// elapsed-time floors like StorageFloorBound are not admissible
			// there: pruning could silently discard the true optimum. Disable
			// the hook rather than risk a wrong result.
			lb = nil
		}
		best, found, evaluated, err = eng.Exhaustive(cons, sp, lb)
	}
	if err != nil {
		return nil, err
	}
	res.Evaluated = evaluated
	if found {
		res.Feasible = true
		res.Layout = best.LayoutClone()
		res.TOCCents = best.TOCCents
		res.Metrics = best.Metrics
	} else if base == nil {
		// Full enumeration found nothing: report L0's numbers so the caller
		// can decide how to relax the constraints.
		res.Layout = ev0.LayoutClone()
		res.TOCCents = ev0.TOCCents
		res.Metrics = ev0.Metrics
	} else {
		// Partial enumeration found nothing: report the pinned base, with
		// metrics and TOC both evaluated under it (unless pruning skipped
		// the base's subtree, this is a memo hit).
		evBase, err := eng.Evaluate(base.Clone())
		if err != nil {
			return nil, err
		}
		res.Layout = evBase.LayoutClone()
		res.TOCCents = evBase.TOCCents
		res.Metrics = evBase.Metrics
	}
	res.EstimatorCalls = eng.Stats().Sub(stats0).EstimatorCalls
	res.PlanTime = time.Since(start)
	return res, nil
}

// compactSpace assembles the compiled DFS's assignment space. It reports
// ok=false when the enumeration must stay on the map path: the engine is
// not compiled, the base layout cannot be encoded, or a map-form LowerBound
// is installed without its compact mirror (falling back preserves pruning).
func (in Input) compactSpace(eng *search.Engine, free []catalog.ObjectID, base catalog.Layout, throughput bool) (search.CompactSpace, bool) {
	if !eng.Compiled() {
		return search.CompactSpace{}, false
	}
	if in.LowerBound != nil && in.CompactBound == nil && !throughput {
		return search.CompactSpace{}, false
	}
	csp := search.CompactSpace{Free: free, Classes: in.Box.Classes()}
	if base != nil {
		bc, ok := catalog.CompactFromLayout(in.Cat, base)
		if !ok {
			return search.CompactSpace{}, false
		}
		csp.Base = bc
	} else {
		csp.Base = catalog.NewCompactLayout(in.Cat.NumObjects())
	}
	// The elapsed-time floor is inadmissible for throughput objectives,
	// exactly as on the map path.
	if in.CompactBound != nil && !throughput {
		sizes := in.Cat.DenseSizeBytes()
		gb := make([]float64, len(sizes))
		for i, s := range sizes {
			gb[i] = float64(s) / 1e9
		}
		csp.SizeGB = gb
		for _, d := range in.Box.Devices {
			if int(d.Class) < device.NumClasses {
				csp.PriceCents[d.Class] = d.PriceCents
			}
		}
		csp.Bound = in.CompactBound
	}
	return csp, true
}

// ExhaustiveRelaxing mirrors OptimizeRelaxing for the ES baseline: halve
// the SLA until ES finds a feasible layout (paper §4.5.3: "This process
// stops when ES finds a feasible solution"). All rounds share one search
// engine, so each halving re-checks memoized evaluations instead of
// re-estimating the whole space.
func ExhaustiveRelaxing(in Input, opts Options, minSLA float64) (*Result, float64, error) {
	eng, err := in.engine()
	if err != nil {
		return nil, 0, err
	}
	return relaxing(opts, minSLA, func(o Options) (*Result, error) {
		return exhaustiveWith(in, o, eng)
	})
}
