package pagestore

import (
	"bytes"
	"testing"

	"dotprov/internal/bufferpool"
	"dotprov/internal/catalog"
	"dotprov/internal/device"
)

type recordingCharger struct {
	counts map[device.IOType]int64
}

func newRecorder() *recordingCharger {
	return &recordingCharger{counts: make(map[device.IOType]int64)}
}

func (r *recordingCharger) ChargeIO(_ catalog.ObjectID, t device.IOType, n int64) {
	r.counts[t] += n
}

func TestHeapInsertFetch(t *testing.T) {
	h := NewHeapFile(1)
	pool := bufferpool.New(16)
	ch := newRecorder()
	rid, err := h.Insert(pool, ch, []byte("row-1"))
	if err != nil {
		t.Fatal(err)
	}
	if ch.counts[device.SeqWrite] != 1 {
		t.Fatalf("insert charged %d SW, want 1", ch.counts[device.SeqWrite])
	}
	got, err := h.Fetch(pool, ch, rid)
	if err != nil || string(got) != "row-1" {
		t.Fatalf("Fetch = %q, %v", got, err)
	}
	// The inserting worker left the page resident, so no RR charge.
	if ch.counts[device.RandRead] != 0 {
		t.Fatalf("fetch of freshly written page charged %d RR, want 0 (buffer hit)", ch.counts[device.RandRead])
	}
	if h.NumRows() != 1 || h.NumPages() != 1 || h.SizeBytes() != PageSize {
		t.Fatalf("bookkeeping wrong: rows=%d pages=%d size=%d", h.NumRows(), h.NumPages(), h.SizeBytes())
	}
}

func TestHeapFetchMissChargesRandomRead(t *testing.T) {
	h := NewHeapFile(1)
	pool := bufferpool.New(16)
	rid, _ := h.Insert(pool, bufferpool.NopCharger{}, []byte("cold"))
	pool.Clear() // evict everything: simulate a cold buffer
	ch := newRecorder()
	if _, err := h.Fetch(pool, ch, rid); err != nil {
		t.Fatal(err)
	}
	if ch.counts[device.RandRead] != 1 {
		t.Fatalf("cold fetch charged %d RR, want 1", ch.counts[device.RandRead])
	}
}

func TestHeapGrowsPages(t *testing.T) {
	h := NewHeapFile(1)
	pool := bufferpool.New(4)
	rec := make([]byte, 1000)
	for i := 0; i < 20; i++ {
		if _, err := h.Insert(pool, bufferpool.NopCharger{}, rec); err != nil {
			t.Fatal(err)
		}
	}
	// 8 per page -> 3 pages.
	if h.NumPages() != 3 {
		t.Fatalf("pages = %d, want 3", h.NumPages())
	}
	if h.NumRows() != 20 {
		t.Fatalf("rows = %d, want 20", h.NumRows())
	}
}

func TestHeapScan(t *testing.T) {
	h := NewHeapFile(1)
	pool := bufferpool.New(2)
	want := map[string]bool{}
	rec := make([]byte, 900)
	for i := 0; i < 30; i++ {
		copy(rec, []byte{byte(i)})
		if _, err := h.Insert(pool, bufferpool.NopCharger{}, rec); err != nil {
			t.Fatal(err)
		}
		want[string(rec[:1])] = true
	}
	pool.Clear()
	ch := newRecorder()
	seen := 0
	err := h.Scan(pool, ch, func(rid RID, r []byte) bool {
		seen++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 30 {
		t.Fatalf("scan saw %d rows, want 30", seen)
	}
	if ch.counts[device.SeqRead] != int64(h.NumPages()) {
		t.Fatalf("scan charged %d SR, want %d (one per page)", ch.counts[device.SeqRead], h.NumPages())
	}
}

func TestHeapScanEarlyStop(t *testing.T) {
	h := NewHeapFile(1)
	pool := bufferpool.New(16)
	for i := 0; i < 10; i++ {
		h.Insert(pool, bufferpool.NopCharger{}, []byte{byte(i)})
	}
	n := 0
	h.Scan(pool, bufferpool.NopCharger{}, func(RID, []byte) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("scan visited %d rows after early stop, want 3", n)
	}
}

func TestHeapUpdateDelete(t *testing.T) {
	h := NewHeapFile(1)
	pool := bufferpool.New(16)
	ch := newRecorder()
	rid, _ := h.Insert(pool, ch, []byte("before"))
	if err := h.Update(pool, ch, rid, []byte("after!")); err != nil {
		t.Fatal(err)
	}
	if ch.counts[device.RandWrite] != 1 {
		t.Fatalf("update charged %d RW, want 1", ch.counts[device.RandWrite])
	}
	got, _ := h.Fetch(pool, ch, rid)
	if string(got) != "after!" {
		t.Fatalf("after update = %q", got)
	}
	if err := h.Delete(pool, ch, rid); err != nil {
		t.Fatal(err)
	}
	if h.NumRows() != 0 {
		t.Fatal("row count after delete should be 0")
	}
	if _, err := h.Fetch(pool, ch, rid); err == nil {
		t.Fatal("fetch of deleted record should fail")
	}
}

func TestHeapSkipsDeletedInScan(t *testing.T) {
	h := NewHeapFile(1)
	pool := bufferpool.New(16)
	r1, _ := h.Insert(pool, bufferpool.NopCharger{}, []byte("a"))
	h.Insert(pool, bufferpool.NopCharger{}, []byte("b"))
	h.Delete(pool, bufferpool.NopCharger{}, r1)
	var seen []string
	h.Scan(pool, bufferpool.NopCharger{}, func(_ RID, rec []byte) bool {
		seen = append(seen, string(rec))
		return true
	})
	if len(seen) != 1 || seen[0] != "b" {
		t.Fatalf("scan after delete saw %v, want [b]", seen)
	}
}

func TestHeapOutOfRangeErrors(t *testing.T) {
	h := NewHeapFile(1)
	pool := bufferpool.New(4)
	bad := RID{Page: 99, Slot: 0}
	if _, err := h.Fetch(pool, bufferpool.NopCharger{}, bad); err == nil {
		t.Fatal("fetch out of range should fail")
	}
	if err := h.Update(pool, bufferpool.NopCharger{}, bad, nil); err == nil {
		t.Fatal("update out of range should fail")
	}
	if err := h.Delete(pool, bufferpool.NopCharger{}, bad); err == nil {
		t.Fatal("delete out of range should fail")
	}
}

func TestHeapInsertAfterMidFileDeleteStillAppends(t *testing.T) {
	// The insert hint tracks the tail; records keep stable RIDs.
	h := NewHeapFile(1)
	pool := bufferpool.New(16)
	var rids []RID
	rec := make([]byte, 2000)
	for i := 0; i < 9; i++ { // ~4 per page -> 3 pages
		r, _ := h.Insert(pool, bufferpool.NopCharger{}, rec)
		rids = append(rids, r)
	}
	h.Delete(pool, bufferpool.NopCharger{}, rids[0])
	r, err := h.Insert(pool, bufferpool.NopCharger{}, rec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Page != rids[len(rids)-1].Page && int(r.Page) != h.NumPages()-1 {
		t.Fatalf("insert went to page %d, want the tail", r.Page)
	}
	got, err := h.Fetch(pool, bufferpool.NopCharger{}, rids[4])
	if err != nil || !bytes.Equal(got, rec) {
		t.Fatal("unrelated record damaged")
	}
}
