// Provision sweep: the paper's §5 generalized provisioning problem as a
// fleet would run it — enumerate candidate storage configurations from a
// declarative device grid (unit counts × device types × alpha blend points
// of the discrete-sized cost model), search a layout for each through the
// shared engine, and buy the cheapest configuration whose layout meets the
// SLA.
//
//	go run ./examples/provision_sweep
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"dotprov/internal/catalog"
	"dotprov/internal/core"
	"dotprov/internal/device"
	"dotprov/internal/iosim"
	"dotprov/internal/provision"
	"dotprov/internal/types"
	"dotprov/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A warehouse-ish database: a big scanned fact table, a hot index, a
	// write-heavy log.
	cat := catalog.New()
	schema := types.NewSchema(types.Column{Name: "k", Kind: types.KindInt})
	facts, err := cat.CreateTable("facts", schema, []string{"k"})
	if err != nil {
		return err
	}
	ix, err := cat.CreateIndex("facts_pkey", facts.ID, []string{"k"}, true)
	if err != nil {
		return err
	}
	wal, err := cat.CreateAux("wal", catalog.KindLog, 2e9)
	if err != nil {
		return err
	}
	// 112 GB total: small candidate boxes (a lone 80 GB H-SSD) cannot hold
	// it, so the sweep also demonstrates per-candidate failure reasons.
	cat.SetSize(facts.ID, 100e9)
	cat.SetSize(ix.ID, 10e9)

	// The workload profile: heavy sequential scans of the facts, random
	// point reads on the index, sequential WAL appends.
	prof := iosim.NewProfile()
	prof.Add(facts.ID, device.SeqRead, 4e6)
	prof.Add(ix.ID, device.RandRead, 2e5)
	prof.Add(wal.ID, device.SeqWrite, 1e6)

	est := &profileEstimator{prof: prof}
	ps := core.NewProfileSet()
	ps.SetSingle(prof)

	// The candidate space: up to two HDD RAID 0 or L-SSD units, at most one
	// H-SSD, priced at three alpha blend points of the §5.2 discrete model.
	grid := provision.Grid{
		Devices: []provision.DeviceOption{
			{Class: device.HDDRAID0, Counts: []int{0, 1, 2}},
			{Class: device.LSSD, Counts: []int{0, 1, 2}},
			{Class: device.HSSD, Counts: []int{0, 1}},
		},
		Alphas: []float64{0, 0.5, 1},
	}
	est.box = grid.Universe()

	base := core.Input{
		Cat:         cat,
		Est:         est,
		Profiles:    ps,
		Concurrency: 1,
		Workers:     runtime.NumCPU(),
	}
	start := time.Now()
	choice, err := provision.SweepConfigurations(base, grid, core.Options{RelativeSLA: 0.5})
	if err != nil {
		return err
	}
	fmt.Printf("swept %d candidate configurations in %v (%d layouts investigated, %d estimator calls thanks to the shared memo)\n\n",
		len(choice.Results), time.Since(start).Round(time.Millisecond), choice.Evaluated, choice.EstimatorCalls)
	for i, r := range choice.Results {
		marker := "  "
		if i == choice.Best {
			marker = "->"
		}
		if r.Result.Feasible {
			fmt.Printf("%s %-42s TOC %.4e cents/run\n", marker, r.Name, r.Result.TOCCents)
		} else {
			fmt.Printf("%s %-42s infeasible: %s\n", marker, r.Name, r.Failure)
		}
	}
	if choice.Best < 0 {
		return fmt.Errorf("no feasible configuration — relax the SLA or widen the grid")
	}
	best := choice.Results[choice.Best]
	fmt.Printf("\nbuy: %s\n%s", best.Name, best.Result.Layout.String(cat))
	return nil
}

// profileEstimator prices the frozen profile under candidate layouts (a
// pure reader, so it is safe for the sweep's concurrent searches).
type profileEstimator struct {
	box  *device.Box
	prof iosim.Profile
}

func (e *profileEstimator) Estimate(l catalog.Layout) (workload.Metrics, error) {
	t, err := e.prof.IOTime(l, e.box, 1)
	if err != nil {
		return workload.Metrics{}, err
	}
	return workload.Metrics{Elapsed: t, PerQuery: []time.Duration{t}}, nil
}
