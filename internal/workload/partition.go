// Partition-granular estimation: profile-driven estimators re-derive
// themselves over a catalog.Partitioning's unit catalog by apportioning
// their observed per-object I/O counts across each object's units in
// proportion to extent heat. The derived estimators price unit-granular
// layouts with the same arithmetic as their object-granular sources, so a
// layout that places every unit of an object together costs exactly what
// the object-granular layout does — and a layout that splits a hot extent
// from its cold tail is priced for exactly that split.
//
// Plan-aware estimators (the DSS re-planning estimator) cannot apportion:
// their per-query costs come from re-planning against object statistics.
// They are rejected with a descriptive error; partition-granular advising
// requires the profile-driven paths (§4.5's test run or observed counts).
package workload

import (
	"fmt"

	"dotprov/internal/catalog"
	"dotprov/internal/iosim"
)

// Partitionable is implemented by estimators that can re-derive themselves
// at partition granularity.
type Partitionable interface {
	// PartitionFor returns an estimator over the partitioning's unit
	// catalog together with the unit-granular workload profile (the
	// apportioned union of the estimator's observations) for move scoring.
	PartitionFor(pt *catalog.Partitioning) (Estimator, iosim.Profile, error)
}

// PartitionEstimator re-derives est over the partitioning's unit catalog.
// It unwraps compiled estimators transparently and errors for estimators
// that cannot be apportioned (plan-aware DSS estimation).
func PartitionEstimator(est Estimator, pt *catalog.Partitioning) (Estimator, iosim.Profile, error) {
	p, ok := est.(Partitionable)
	if !ok {
		return nil, nil, fmt.Errorf("workload: estimator %T cannot be re-derived at partition granularity (profile-driven estimators only)", est)
	}
	return p.PartitionFor(pt)
}

// PartitionFor implements Partitionable: each observed query's profile is
// apportioned onto the units, CPU times carry over unchanged.
func (e *ObservedEstimator) PartitionFor(pt *catalog.Partitioning) (Estimator, iosim.Profile, error) {
	out := &ObservedEstimator{Box: e.Box, Concurrency: e.Concurrency}
	union := iosim.NewProfile()
	for _, q := range e.PerQuery {
		up := iosim.ApportionProfile(q.Profile, pt)
		union.Merge(up)
		out.PerQuery = append(out.PerQuery, QueryObservation{Profile: up, CPU: q.CPU})
	}
	return out, union, nil
}

// PartitionFor implements Partitionable: the test-run profile is
// apportioned onto the units and the estimator is re-based on the expanded
// profiled layout, so throughput scaling starts from the same test run.
func (e *ProfileEstimator) PartitionFor(pt *catalog.Partitioning) (Estimator, iosim.Profile, error) {
	if e.profiledLayout == nil {
		return nil, nil, fmt.Errorf("workload: profile estimator lacks its profiled layout; build it with NewProfileEstimator")
	}
	up := iosim.ApportionProfile(e.Profile, pt)
	pe, err := NewProfileEstimator(e.Box, e.Concurrency, up, e.CPUTime, e.Stats, pt.ExpandLayout(e.profiledLayout))
	if err != nil {
		return nil, nil, err
	}
	return pe, up, nil
}

// PartitionFor implements Partitionable by re-deriving the map-path source
// (the caller re-compiles for the unit catalog).
func (e *compiledObserved) PartitionFor(pt *catalog.Partitioning) (Estimator, iosim.Profile, error) {
	return e.src.PartitionFor(pt)
}

// PartitionFor implements Partitionable by re-deriving the map-path source
// (the caller re-compiles for the unit catalog).
func (e *compiledThroughput) PartitionFor(pt *catalog.Partitioning) (Estimator, iosim.Profile, error) {
	return e.src.PartitionFor(pt)
}

// UnitMigrationBytes sums the sizes of the units a unit-granular layout
// transition moves. Production migration accounting comes from
// online.MigrationModel (which also prices the moves); this is the
// independent cross-check its per-partition byte totals are verified
// against.
func UnitMigrationBytes(pt *catalog.Partitioning, from, to catalog.Layout) int64 {
	var total int64
	for _, u := range pt.Units() {
		src, okFrom := from[u.ID]
		dst, okTo := to[u.ID]
		if okFrom && okTo && src != dst {
			total += u.SizeBytes
		}
	}
	return total
}
