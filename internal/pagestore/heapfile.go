package pagestore

import (
	"fmt"

	"dotprov/internal/bufferpool"
	"dotprov/internal/catalog"
	"dotprov/internal/device"
)

// RID is a record identifier: page number and slot within the page.
type RID struct {
	Page uint32
	Slot uint16
}

// String renders the RID for diagnostics.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// HeapFile is an append-oriented table file made of slotted pages. Device
// time is charged through the buffer pool: sequential reads during scans,
// random reads for RID fetches, and per-row write charges for inserts and
// updates (matching the units of the paper's Table 1).
type HeapFile struct {
	obj   catalog.ObjectID
	pages []*Page
	rows  int64
	// insertHint is the page that last accepted an insert; appends go there
	// first, then fall through to a new page.
	insertHint int
}

// NewHeapFile creates an empty heap file for the given catalog object.
func NewHeapFile(obj catalog.ObjectID) *HeapFile {
	return &HeapFile{obj: obj}
}

// Object returns the owning catalog object.
func (h *HeapFile) Object() catalog.ObjectID { return h.obj }

// NumPages returns the number of allocated pages.
func (h *HeapFile) NumPages() int { return len(h.pages) }

// NumRows returns the number of live records.
func (h *HeapFile) NumRows() int64 { return h.rows }

// SizeBytes returns the file's size (whole pages).
func (h *HeapFile) SizeBytes() int64 { return int64(len(h.pages)) * PageSize }

// Insert appends a record, charging one sequential-write row operation, and
// returns its RID.
func (h *HeapFile) Insert(pool *bufferpool.Pool, ch bufferpool.IOCharger, rec []byte) (RID, error) {
	if h.insertHint < len(h.pages) {
		if slot, err := h.pages[h.insertHint].Insert(rec); err == nil {
			ch.ChargeIO(h.obj, device.SeqWrite, 1)
			pool.Touch(h.obj, uint32(h.insertHint))
			h.rows++
			return RID{Page: uint32(h.insertHint), Slot: uint16(slot)}, nil
		} else if err != ErrPageFull {
			return RID{}, err
		}
	}
	p := NewPage()
	slot, err := p.Insert(rec)
	if err != nil {
		return RID{}, err
	}
	h.pages = append(h.pages, p)
	h.insertHint = len(h.pages) - 1
	bufferpool.ChargePage(ch, h.obj, device.SeqWrite, int64(h.insertHint), 1)
	pool.Touch(h.obj, uint32(h.insertHint))
	h.rows++
	return RID{Page: uint32(h.insertHint), Slot: uint16(slot)}, nil
}

// Fetch reads the record at rid with a random page read (on buffer miss).
// The returned bytes alias the page.
func (h *HeapFile) Fetch(pool *bufferpool.Pool, ch bufferpool.IOCharger, rid RID) ([]byte, error) {
	if int(rid.Page) >= len(h.pages) {
		return nil, fmt.Errorf("pagestore: fetch %v: page out of range (have %d)", rid, len(h.pages))
	}
	pool.Access(ch, h.obj, rid.Page, device.RandRead)
	return h.pages[rid.Page].Get(int(rid.Slot))
}

// Update rewrites the record at rid in place, charging one random-write row
// operation. (An update's read side is charged by whoever located the RID.)
func (h *HeapFile) Update(pool *bufferpool.Pool, ch bufferpool.IOCharger, rid RID, rec []byte) error {
	if int(rid.Page) >= len(h.pages) {
		return fmt.Errorf("pagestore: update %v: page out of range (have %d)", rid, len(h.pages))
	}
	if err := h.pages[rid.Page].Update(int(rid.Slot), rec); err != nil {
		return err
	}
	bufferpool.ChargePage(ch, h.obj, device.RandWrite, int64(rid.Page), 1)
	pool.Touch(h.obj, rid.Page)
	return nil
}

// Delete removes the record at rid, charging one random-write row operation.
func (h *HeapFile) Delete(pool *bufferpool.Pool, ch bufferpool.IOCharger, rid RID) error {
	if int(rid.Page) >= len(h.pages) {
		return fmt.Errorf("pagestore: delete %v: page out of range (have %d)", rid, len(h.pages))
	}
	if err := h.pages[rid.Page].Delete(int(rid.Slot)); err != nil {
		return err
	}
	bufferpool.ChargePage(ch, h.obj, device.RandWrite, int64(rid.Page), 1)
	h.rows--
	return nil
}

// Scan iterates every live record in physical order, charging one
// sequential page read per page (on buffer miss). The callback's record
// slice aliases the page. Iteration stops when fn returns false.
func (h *HeapFile) Scan(pool *bufferpool.Pool, ch bufferpool.IOCharger, fn func(rid RID, rec []byte) bool) error {
	for pg := 0; pg < len(h.pages); pg++ {
		pool.Access(ch, h.obj, uint32(pg), device.SeqRead)
		p := h.pages[pg]
		for s := 0; s < p.NumSlots(); s++ {
			rec, err := p.Get(s)
			if err == ErrNoSlot {
				continue
			}
			if err != nil {
				return err
			}
			if !fn(RID{Page: uint32(pg), Slot: uint16(s)}, rec) {
				return nil
			}
		}
	}
	return nil
}
