// TPC-H advisor example: the paper's §4.4 scenario end to end. Builds the
// TPC-H database on both box configurations, runs the full DOT pipeline
// (profiling, optimization, validation with refinement) for the original
// mix at relative SLA 0.5, and compares the result with the simple layouts
// and the Object Advisor baseline — the experiment behind Figures 3 and 4.
//
//	go run ./examples/tpch_advisor
package main

import (
	"log"
	"os"

	"dotprov/internal/bench"
)

func main() {
	opts := bench.Default()
	if _, err := bench.Figure3(os.Stdout, opts); err != nil {
		log.Fatal(err)
	}
}
