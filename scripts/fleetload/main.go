// Command fleetload is the multi-tenant load harness for dotserve: it
// drives 1000+ concurrent tenant streams of binary observation frames
// through a race-built server twice — once pinned to a single fold shard,
// once with one shard per CPU — and holds the fleet contract:
//
//  1. zero races — both server processes must survive the full load and
//     shut down cleanly (a -race build dies loudly otherwise, and the
//     harness also scans stderr for race reports);
//  2. bounded shed — every frame is eventually admitted (the harness
//     retries 429s) and the shed rate stays under a hard ceiling;
//  3. fleet memo — tenants are drawn from a small set of workload
//     shapes, so duplicate-fingerprint defines must coalesce: exactly
//     one memo miss per shape, hits for everyone else;
//  4. shard parity — the defining advises and the post-drain forced
//     re-advises of the chaos-untouched tenant cohort are bit-identical
//     between the 1-shard and N-shard runs (only plan_millis, wall
//     clock, is stripped): shard count is an execution detail.
//
// Tenants whose index ends the chaos stride fire an extra forced
// re-advise mid-load (staggered by tenant) to stress the fold/readvise
// interleaving; their decisions are deliberately excluded from the
// parity check, since they anchor at a nondeterministic fold depth.
//
// Run it via scripts/fleetload.sh, or directly:
//
//	go build -race -o /tmp/dotserve ./cmd/dotserve
//	go run ./scripts/fleetload -bin /tmp/dotserve
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"dotprov/internal/online"
	"dotprov/internal/serve"
)

// opts carries the harness knobs.
type opts struct {
	bin     string
	tenants int
	frames  int
	shapes  int
	workers int
	shards  int
}

func main() {
	var o opts
	flag.StringVar(&o.bin, "bin", "", "path to a dotserve binary (required; build it with -race)")
	flag.IntVar(&o.tenants, "tenants", 1000, "concurrent tenant streams")
	flag.IntVar(&o.frames, "frames", 4, "binary frames shipped per tenant")
	flag.IntVar(&o.shapes, "shapes", 8, "distinct workload shapes (tenant i uses shape i%%shapes; duplicates must hit the fleet memo)")
	flag.IntVar(&o.workers, "workers", 64, "client-side concurrency")
	flag.IntVar(&o.shards, "shards", 0, "shard count for the N-shard run (0 = max(2, NumCPU))")
	flag.Parse()
	if o.bin == "" {
		log.Fatal("fleetload: -bin is required")
	}
	if o.shards == 0 {
		o.shards = runtime.NumCPU()
		if o.shards < 2 {
			o.shards = 2
		}
	}
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	if err := run(o); err != nil {
		log.Fatalf("fleetload: FAIL: %v", err)
	}
	log.Printf("fleetload: PASS (%d tenants, %d shapes, 1-shard vs %d-shard parity, zero races)",
		o.tenants, o.shapes, o.shards)
}

func run(o opts) error {
	one, err := runFleet(o, 1)
	if err != nil {
		return fmt.Errorf("1-shard run: %w", err)
	}
	many, err := runFleet(o, o.shards)
	if err != nil {
		return fmt.Errorf("%d-shard run: %w", o.shards, err)
	}
	// Shard parity: defining advises for every tenant, post-drain forced
	// decisions for the chaos-untouched cohort.
	for name, ans := range one.defines {
		if many.defines[name] != ans {
			return fmt.Errorf("define parity: tenant %s differs between 1 and %d shards:\n  1: %s\n  %d: %s",
				name, o.shards, ans, o.shards, many.defines[name])
		}
	}
	if len(one.decides) == 0 {
		return fmt.Errorf("parity cohort is empty — chaos stride swallowed every tenant")
	}
	for name, ans := range one.decides {
		if many.decides[name] != ans {
			return fmt.Errorf("decision parity: tenant %s differs between 1 and %d shards:\n  1: %s\n  %d: %s",
				name, o.shards, ans, o.shards, many.decides[name])
		}
	}
	log.Printf("fleetload: parity ok (%d defines, %d untouched decisions bit-identical across shard counts)",
		len(one.defines), len(one.decides))
	return nil
}

// chaosTenant marks the tenants that fire a mid-load forced re-advise:
// they stress the interleaving but anchor nondeterministically, so the
// parity check skips them.
func chaosTenant(i int) bool { return i%5 == 4 }

// fleetRun is everything one server run yields for cross-run assertions.
type fleetRun struct {
	defines map[string]string // tenant -> canonical defining advise
	decides map[string]string // untouched tenant -> canonical forced re-advise
}

func runFleet(o opts, shards int) (*fleetRun, error) {
	s, err := start(o.bin,
		"-shards", fmt.Sprint(shards),
		"-max-streams", fmt.Sprint(o.tenants),
		"-max-concurrent", fmt.Sprint(o.workers),
		"-search-workers", "2", // fixed width: decisions must not depend on the host
	)
	if err != nil {
		return nil, err
	}
	defer s.kill()
	log.Printf("fleetload: [%d shards] defining %d tenants over %d shapes", shards, o.tenants, o.shapes)

	r := &fleetRun{defines: make(map[string]string, o.tenants), decides: make(map[string]string)}
	var mu sync.Mutex // guards r across the worker pool

	// Phase 1: define every tenant. Duplicate-fingerprint defines must
	// coalesce on the fleet memo (asserted after the phase).
	err = pool(o.workers, o.tenants, func(i int) error {
		name := tenantName(i)
		body, err := postRetry(s, "/v1/observe", serve.ObserveRequest{
			Stream:   name,
			Workload: shapeSpec(i%o.shapes, 0),
			Box:      "box1",
			SLA:      0.25,
		})
		if err != nil {
			return fmt.Errorf("define %s: %w", name, err)
		}
		ans, err := canonical(body)
		if err != nil {
			return fmt.Errorf("define %s: %w", name, err)
		}
		mu.Lock()
		r.defines[name] = ans
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	h, err := getHealth(s)
	if err != nil {
		return nil, err
	}
	if h.MemoMisses != int64(o.shapes) || h.MemoHits < int64(o.tenants-o.shapes) {
		return nil, fmt.Errorf("fleet memo: hits=%d misses=%d over %d tenants / %d shapes, want misses == shapes and hits >= tenants-shapes",
			h.MemoHits, h.MemoMisses, o.tenants, o.shapes)
	}
	log.Printf("fleetload: [%d shards] defines ok (memo hits=%d misses=%d)", shards, h.MemoHits, h.MemoMisses)

	// Phase 2: every tenant ships its frames (retrying sheds), chaos
	// tenants interleave a staggered forced re-advise.
	var posts, sheds atomic.Int64
	err = pool(o.workers, o.tenants, func(i int) error {
		name := tenantName(i)
		frame := online.EncodeFrames([]online.Frame{driftFrame(i % o.shapes)})
		for j := 0; j < o.frames; j++ {
			if chaosTenant(i) && j == 1+i%(o.frames-1) {
				if _, err := postRetry(s, "/v1/readvise", serve.ReadviseRequest{Stream: name, Force: true}); err != nil {
					return fmt.Errorf("chaos readvise %s: %w", name, err)
				}
			}
			for {
				status, err := postFrames(s, name, frame)
				if err != nil {
					return fmt.Errorf("frames %s: %w", name, err)
				}
				posts.Add(1)
				if status == http.StatusAccepted {
					break
				}
				if status != http.StatusTooManyRequests {
					return fmt.Errorf("frames %s: status %d", name, status)
				}
				sheds.Add(1)
				time.Sleep(2 * time.Millisecond)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	shedRate := float64(sheds.Load()) / float64(posts.Load())
	if shedRate > 0.9 {
		return nil, fmt.Errorf("shed rate %.2f (%d of %d posts) — the fold plane is not keeping up", shedRate, sheds.Load(), posts.Load())
	}

	// Phase 3: drain — every admitted frame folds.
	want := int64(o.tenants * o.frames)
	if err := waitHealth(s, func(h health) bool { return h.Ingested >= want && h.Queued == 0 },
		fmt.Sprintf("%d frames folded", want), time.Minute); err != nil {
		return nil, err
	}
	log.Printf("fleetload: [%d shards] load ok (%d frames folded, shed rate %.3f)", shards, want, shedRate)

	// Phase 4: forced decisions for the chaos-untouched cohort.
	err = pool(o.workers, o.tenants, func(i int) error {
		if chaosTenant(i) {
			return nil
		}
		name := tenantName(i)
		body, err := postRetry(s, "/v1/readvise", serve.ReadviseRequest{Stream: name, Force: true})
		if err != nil {
			return fmt.Errorf("decide %s: %w", name, err)
		}
		ans, err := canonical(body)
		if err != nil {
			return fmt.Errorf("decide %s: %w", name, err)
		}
		mu.Lock()
		r.decides[name] = ans
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Clean shutdown: a -race build that observed a race exits non-zero.
	if err := s.terminate(); err != nil {
		return nil, fmt.Errorf("graceful shutdown: %w", err)
	}
	if s.sawRace() {
		return nil, fmt.Errorf("race detector fired (see stderr above)")
	}
	return r, nil
}

// pool runs fn(0..n-1) on w workers and returns the first error.
func pool(w, n int, fn func(i int) error) error {
	var wg sync.WaitGroup
	next := atomic.Int64{}
	var firstErr atomic.Value
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || firstErr.Load() != nil {
					return
				}
				if err := fn(i); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		return err.(error)
	}
	return nil
}

func tenantName(i int) string { return fmt.Sprintf("tenant-%04d", i) }

// shapeSpec is shape k's workload at a given scan share: the shapes vary
// in size and rate so distinct shapes land distinct fingerprints (and
// often distinct layouts), while tenants of one shape are byte-identical.
func shapeSpec(k int, seqShare float64) serve.WorkloadSpec {
	scale := 1 + float64(k)*0.35
	rand := (1 - seqShare) * 2e5 * scale
	seq := seqShare * 2e6 * scale
	return serve.WorkloadSpec{
		Objects: []serve.ObjectSpec{
			{Name: "orders", SizeBytes: int64(8e9 * scale)},
			{Name: "orders_pkey", Kind: "index", Table: "orders", SizeBytes: int64(8e8 * scale)},
			{Name: "wal", Kind: "log", SizeBytes: 1e9},
		},
		IO: []serve.IOSpec{
			{Object: "orders", SeqRead: seq, RandRead: rand},
			{Object: "orders_pkey", RandRead: rand},
			{Object: "wal", SeqWrite: 1e4 * scale},
		},
		CPUMillis:     100 * scale,
		Concurrency:   1,
		Txns:          50000,
		ElapsedMillis: 3.6e6,
	}
}

// driftFrame is shape k's drifted window (scan share 0.8) in wire form,
// indexed against shapeSpec's object order.
func driftFrame(k int) online.Frame {
	spec := shapeSpec(k, 0.8)
	f := online.Frame{
		CPU:     time.Duration(spec.CPUMillis * float64(time.Millisecond)),
		Elapsed: time.Duration(spec.ElapsedMillis * float64(time.Millisecond)),
		Txns:    spec.Txns,
	}
	for i, io := range spec.IO {
		var o online.FrameObject
		o.Index = uint32(i)
		o.IO[0], o.IO[1], o.IO[2], o.IO[3] = io.SeqRead, io.RandRead, io.SeqWrite, io.RandWrite
		f.Objects = append(f.Objects, o)
	}
	return f
}

// canonical re-marshals a JSON answer with plan_millis (the only
// wall-clock field) stripped; map keys marshal sorted, so equal answers
// compare equal as strings.
func canonical(body []byte) (string, error) {
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		return "", fmt.Errorf("%w (body: %s)", err, bytes.TrimSpace(body))
	}
	delete(m, "plan_millis")
	out, err := json.Marshal(m)
	return string(out), err
}

// ---------------------------------------------------------------- server

// server is one dotserve process under test; stderr is teed so the
// harness can scan for race reports after a clean-looking exit.
type server struct {
	cmd     *exec.Cmd
	base    string
	done    chan struct{}
	waitErr error
	errBuf  bytes.Buffer
	errMu   sync.Mutex
}

// raceScanner tees the child's stderr to ours while keeping a copy.
type raceScanner struct{ s *server }

// Write appends to the retained buffer and mirrors to os.Stderr.
func (w raceScanner) Write(p []byte) (int, error) {
	w.s.errMu.Lock()
	w.s.errBuf.Write(p)
	w.s.errMu.Unlock()
	return os.Stderr.Write(p)
}

func (s *server) sawRace() bool {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return strings.Contains(s.errBuf.String(), "DATA RACE")
}

// start launches the binary on a free port and waits for healthz.
func start(bin string, args ...string) (*server, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := l.Addr().String()
	l.Close()
	s := &server{base: "http://" + addr, done: make(chan struct{})}
	s.cmd = exec.Command(bin, append([]string{"-addr", addr}, args...)...)
	s.cmd.Stdout = os.Stderr
	s.cmd.Stderr = raceScanner{s}
	if err := s.cmd.Start(); err != nil {
		return nil, err
	}
	go func() { s.waitErr = s.cmd.Wait(); close(s.done) }()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case <-s.done:
			return nil, fmt.Errorf("dotserve exited during startup: %v", s.waitErr)
		default:
		}
		if status, _ := get(s, "/v1/healthz"); status == http.StatusOK {
			return s, nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	s.kill()
	return nil, fmt.Errorf("dotserve did not answer healthz within 30s")
}

// kill SIGKILLs the process. Idempotent.
func (s *server) kill() {
	s.cmd.Process.Kill()
	<-s.done
}

// terminate SIGTERMs and waits for the graceful drain.
func (s *server) terminate() error {
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case <-s.done:
		return s.waitErr
	case <-time.After(30 * time.Second):
		s.kill()
		return fmt.Errorf("shutdown timed out")
	}
}

// ---------------------------------------------------------------- client

// httpc bounds every exchange so a wedged server fails fast.
var httpc = &http.Client{Timeout: 30 * time.Second}

// health mirrors the serve.HealthResponse fields the harness asserts on.
type health struct {
	Queued     int64 `json:"queued"`
	Ingested   int64 `json:"ingested"`
	Shed       int64 `json:"shed"`
	MemoHits   int64 `json:"memo_hits"`
	MemoMisses int64 `json:"memo_misses"`
}

func get(s *server, path string) (int, []byte) {
	resp, err := httpc.Get(s.base + path)
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

func getHealth(s *server) (health, error) {
	var h health
	status, body := get(s, "/v1/healthz")
	if status != http.StatusOK {
		return h, fmt.Errorf("healthz = %d", status)
	}
	return h, json.Unmarshal(body, &h)
}

// waitHealth polls healthz until cond holds or the deadline passes.
func waitHealth(s *server, cond func(health) bool, what string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for time.Now().Before(deadline) {
		if h, err := getHealth(s); err == nil && cond(h) {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	h, _ := getHealth(s)
	return fmt.Errorf("timed out waiting for %s (health: %+v)", what, h)
}

// postRetry posts JSON and retries transient refusals (429 shed/capacity
// backpressure, 503 saturation) until the server answers 200.
func postRetry(s *server, path string, req any) ([]byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(time.Minute)
	for {
		resp, err := httpc.Post(s.base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return b, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("%s: still %d after a minute of retries: %s", path, resp.StatusCode, bytes.TrimSpace(b))
			}
			time.Sleep(5 * time.Millisecond)
		default:
			return nil, fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(b))
		}
	}
}

// postFrames ships one binary batch; HTTP refusals are statuses the
// caller decides about.
func postFrames(s *server, stream string, batch []byte) (int, error) {
	req, err := http.NewRequest(http.MethodPost, s.base+"/v1/observe?stream="+stream, bytes.NewReader(batch))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", online.ContentTypeFrames)
	resp, err := httpc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}
