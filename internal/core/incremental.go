package core

import (
	"fmt"
	"time"

	"dotprov/internal/catalog"
	"dotprov/internal/search"
	"dotprov/internal/workload"
)

// IncrementalOptions parameterizes OptimizeIncremental: the regular search
// options plus the deployed layout to start from and an optional candidate
// admission gate.
type IncrementalOptions struct {
	Options
	// Seed is the currently deployed layout. The sweep starts from it (not
	// from L0), so under a mildly drifted profile most groups keep their
	// placement and the recommendation is a small set of object moves.
	Seed catalog.Layout
	// Accept optionally vets a candidate before it can be adopted or walked
	// to, on top of capacity and the SLA. It receives the constraint set
	// derived from the L0 baseline so gates can reason about SLA headroom.
	// Online re-advising installs the migration budget here: a candidate
	// whose migration time (bytes moved off Seed — read sequentially at
	// the source class, rewritten at the destination class's write rate)
	// exceeds the headroom is rejected even if its steady-state TOC is
	// lower. Nil admits every candidate.
	Accept func(ev search.Eval, cons workload.Constraints) bool
}

// OptimizeIncremental is the online variant of Optimize: instead of walking
// down from L0 (every object on the most expensive class), it seeds the
// sweep with the layout currently deployed and looks for gated, TOC-
// improving group moves away from it.
//
// The procedure evaluates the L0 baseline once (the relative SLA is defined
// against it, exactly as in the offline search), evaluates Seed, and then
// runs a single guarded move sweep (Options.Passes overrides; default 1)
// from Seed on the engine's compiled/delta path when available. Compared to
// a cold OptimizeBest this skips the uniform-layout anchors and the second
// (greedy) policy sweep, so it evaluates strictly fewer candidates — the
// point of re-advising online is that a small profile drift should cost a
// small search.
//
// When no gated feasible candidate exists — Seed violates the drifted SLA
// and every admissible move does too — the result reports Feasible=false
// with Seed's numbers, and the caller decides whether to relax the gate or
// fall back to a full cold search (online.Manager does the latter).
func OptimizeIncremental(in Input, opts IncrementalOptions) (*Result, error) {
	eng, err := in.engine()
	if err != nil {
		return nil, err
	}
	if err := opts.validateSLA(); err != nil {
		return nil, err
	}
	if len(opts.Seed) == 0 {
		return nil, fmt.Errorf("core: OptimizeIncremental requires a seed layout")
	}
	moves, err := in.enumerateMoves(eng)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	stats0 := eng.Stats()
	_, _, cons, err := in.prep(opts.Options, eng)
	if err != nil {
		return nil, err
	}
	evSeed, err := in.evaluateSeed(eng, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("core: estimating seed layout: %w", err)
	}
	res := &Result{Constraints: cons, Evaluated: 2} // L0 baseline + seed
	// Staying put moves zero bytes, so the seed bypasses the gate; L0 is a
	// constraint anchor only, never an incremental candidate (adopting it
	// would be a full-database migration).
	res.consider(evSeed, cons)

	passes := opts.Passes
	if passes < 1 {
		passes = 1
	}
	sweepOpts := opts.Options
	sweepOpts.GreedyApply = false
	if eng.Compiled() && !evSeed.Compact.IsZero() {
		err = dotSweepCompact(sweepOpts, eng, moves, evSeed, cons, res, passes, opts.Accept)
	} else {
		err = dotSweepMap(sweepOpts, eng, moves, evSeed, cons, res, passes, opts.Accept)
	}
	if err != nil {
		return nil, err
	}
	if !res.Feasible {
		// No gated feasible layout: report the seed's numbers (not L0's) so
		// the caller sees what the deployed layout costs under the drifted
		// profile while deciding how to proceed.
		res.best = evSeed
		res.haveBest = true
		res.TOCCents = evSeed.TOCCents
		res.Metrics = evSeed.Metrics
	}
	res.Layout = res.best.LayoutClone()
	res.EstimatorCalls = eng.Stats().Sub(stats0).EstimatorCalls
	res.PlanTime = time.Since(start)
	return res, nil
}

// evaluateSeed runs the seed layout through the engine, staying compact on
// the compiled path. The layout is cloned before the engine can retain it,
// so the caller's map stays private.
func (in Input) evaluateSeed(eng *search.Engine, seed catalog.Layout) (search.Eval, error) {
	if eng.Compiled() {
		if cl, ok := catalog.CompactFromLayout(in.Cat, seed); ok {
			return eng.EvaluateCompact(cl)
		}
	}
	return eng.Evaluate(seed.Clone())
}
