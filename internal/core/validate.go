package core

import (
	"fmt"

	"dotprov/internal/catalog"
	"dotprov/internal/workload"
)

// Runner executes the workload for real under a layout (a test run on the
// simulator) and reports what was observed. It is the validation phase's
// probe (paper Fig. 2). DSS runners should fill Observation.PerQuery so the
// refinement phase can re-price real I/O counts.
type Runner interface {
	Run(l catalog.Layout) (workload.Observation, error)
}

// Validation reports one validation round.
type Validation struct {
	Layout    catalog.Layout
	Measured  workload.Metrics
	Obs       workload.Observation
	Satisfied bool
	PSR       float64
}

// Validate runs the workload on the recommended layout and checks the
// measured performance against constraints derived from a measured baseline
// run on L0.
func Validate(in Input, runner Runner, sla float64, layout catalog.Layout) (*Validation, workload.Constraints, error) {
	l0 := catalog.NewUniformLayout(in.Cat, in.Box.MostExpensive().Class)
	base, err := runner.Run(l0)
	if err != nil {
		return nil, workload.Constraints{}, fmt.Errorf("core: baseline test run: %w", err)
	}
	cons := workload.Constraints{Relative: sla, Baseline: base.Metrics}
	obs, err := runner.Run(layout)
	if err != nil {
		return nil, cons, fmt.Errorf("core: validation test run: %w", err)
	}
	return &Validation{
		Layout:    layout,
		Measured:  obs.Metrics,
		Obs:       obs,
		Satisfied: cons.Satisfied(obs.Metrics),
		PSR:       cons.PSR(obs.Metrics),
	}, cons, nil
}

// OptimizeValidated runs the full pipeline of Figure 2: optimize, validate
// with a test run, and — when the test run misses the SLA — refine by
// re-optimizing from the real runtime statistics: the measured per-query
// I/O counts become both the move-scoring profile and the estimator
// (paper §3: the refinement phase "uses real runtime statistics ... as the
// input (instead of going to the profiling phase) to redo the optimization
// phase"). At most maxRounds refinement rounds run.
func OptimizeValidated(in Input, opts Options, runner Runner, maxRounds int) (*Result, *Validation, error) {
	res, err := Optimize(in, opts)
	if err != nil {
		return nil, nil, err
	}
	if !res.Feasible {
		return res, nil, nil
	}
	val, cons, err := Validate(in, runner, opts.RelativeSLA, res.Layout)
	if err != nil {
		return nil, nil, err
	}
	rounds := 0
	prev := res.Layout
	for !val.Satisfied && rounds < maxRounds {
		rounds++
		if len(val.Obs.PerQuery) == 0 {
			// No per-query statistics (OLTP path): nothing finer to refine
			// with; report the best layout found so far.
			return res, val, nil
		}
		refined := NewProfileSet()
		refined.SetSingle(val.Obs.Profile)
		in2 := in
		in2.Profiles = refined
		in2.Est = &workload.ObservedEstimator{
			Box:         in.Box,
			Concurrency: in.conc(),
			PerQuery:    val.Obs.PerQuery,
		}
		// The refined optimization stays in its own estimate space (its L0
		// estimate is the reference); the follow-up validation is what
		// checks reality. Mixing measured caps with frozen-plan repricing
		// would wrongly rule out every layout. Each round swaps in a new
		// estimator, so each round's Optimize builds a fresh engine:
		// memoized evaluations are only valid for the estimator that
		// produced them.
		res, err = Optimize(in2, opts)
		if err != nil {
			return nil, nil, err
		}
		if !res.Feasible {
			return res, val, nil
		}
		if res.Layout.Equal(prev) {
			// Fixed point: further rounds would repeat this layout.
			return res, val, nil
		}
		prev = res.Layout
		val, cons, err = Validate(in, runner, opts.RelativeSLA, res.Layout)
		if err != nil {
			return nil, nil, err
		}
	}
	_ = cons
	return res, val, nil
}
