// Online advising endpoints: /observe ingests live profile windows into
// per-stream online.Managers, /readvise runs the drift-gated incremental
// re-optimization, and an optional background ticker re-advises every
// stream on an interval — the serve-side half of the profile → drift →
// re-advise loop (see internal/online).
package serve

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dotprov/internal/catalog"
	"dotprov/internal/core"
	"dotprov/internal/device"
	"dotprov/internal/iosim"
	"dotprov/internal/online"
	"dotprov/internal/provision"
)

// ObserveRequest ships one observed profile window for a stream. The first
// observe for a stream defines it — objects, box, SLA, tuning — runs the
// initial cold advise, and returns the layout to deploy; every subsequent
// observe must re-send the identical object list (cheap, and it keeps the
// endpoint stateless to operate) with the new window's I/O counts, CPU,
// elapsed time and transaction count, and returns the drift verdict.
type ObserveRequest struct {
	// Stream names the workload stream; "" selects "default".
	Stream string `json:"stream,omitempty"`
	// Workload carries the object list (fixed per stream) and this window's
	// observation: IO counts, cpu_millis, elapsed_millis, txns.
	Workload WorkloadSpec `json:"workload"`
	// Box / Classes / SLA / Alpha configure the stream on first observe
	// (same semantics as AdviseRequest); ignored afterwards.
	Box     string   `json:"box,omitempty"`
	Classes []string `json:"classes,omitempty"`
	SLA     float64  `json:"sla,omitempty"`
	Alpha   float64  `json:"alpha,omitempty"`
	// DriftThreshold, AggregateWindows and HeadroomFraction tune the
	// stream's online manager on first observe (0 selects the online
	// package defaults).
	DriftThreshold   float64 `json:"drift_threshold,omitempty"`
	AggregateWindows int     `json:"aggregate_windows,omitempty"`
	HeadroomFraction float64 `json:"headroom_fraction,omitempty"`
	// Granularity selects the stream's unit of placement on first observe
	// ("object" default, "partition" splits objects on the declared
	// extents — see AdviseRequest.Granularity). At partition granularity
	// observed profiles are apportioned onto the units by extent heat, and
	// re-advises migrate per partition: a drifted hot tail moves alone.
	Granularity string `json:"granularity,omitempty"`
}

// DriftOut is the wire form of online.Drift.
type DriftOut struct {
	Divergence     float64 `json:"divergence"`
	Drifted        bool    `json:"drifted"`
	Thin           bool    `json:"thin,omitempty"`
	RefFingerprint string  `json:"ref_fingerprint,omitempty"`
	ObsFingerprint string  `json:"obs_fingerprint,omitempty"`
}

// ObserveResponse reports an observe outcome. Initialized is true on the
// first observe of a stream, and Layout then carries the initial
// recommendation; later observes carry the drift verdict of the window
// against the stream's reference profile.
type ObserveResponse struct {
	Stream      string            `json:"stream"`
	Granularity string            `json:"granularity,omitempty"`
	Initialized bool              `json:"initialized"`
	Windows     int64             `json:"windows"` // lifetime windows ingested
	Feasible    bool              `json:"feasible"`
	Failure     string            `json:"failure,omitempty"`
	Layout      map[string]string `json:"layout,omitempty"`
	TOCCents    float64           `json:"toc_cents,omitempty"`
	Drift       *DriftOut         `json:"drift,omitempty"`
}

// ReadviseRequest asks a stream to re-advise now. Without Force the layout
// only changes when the drift detector fires.
type ReadviseRequest struct {
	Stream string `json:"stream,omitempty"`
	Force  bool   `json:"force,omitempty"`
}

// ReadviseResponse reports one re-advise decision.
type ReadviseResponse struct {
	Stream      string   `json:"stream"`
	Granularity string   `json:"granularity,omitempty"`
	Drift       DriftOut `json:"drift"`
	// ReAdvised is true when a changed layout was adopted; Incremental
	// marks it came from the seeded migration-gated search rather than the
	// cold fallback.
	ReAdvised   bool              `json:"readvised"`
	Incremental bool              `json:"incremental,omitempty"`
	Feasible    bool              `json:"feasible"`
	Failure     string            `json:"failure,omitempty"`
	Layout      map[string]string `json:"layout,omitempty"`
	// Migration prices the adopted transition. At partition granularity
	// MovedObjects counts the placement units (partitions) that change
	// class, and MovedBytes sums only the moved extents — the per-unit
	// migration accounting that makes a hot-tail move cheap.
	MovedObjects    int     `json:"moved_objects,omitempty"`
	MovedBytes      int64   `json:"moved_bytes,omitempty"`
	MigrationMillis float64 `json:"migration_millis,omitempty"`
	// Search statistics of the decision (absent when no search ran).
	Evaluated         int     `json:"evaluated,omitempty"`
	EstimatorCalls    int     `json:"estimator_calls,omitempty"`
	PlanMillis        float64 `json:"plan_millis,omitempty"`
	TOCCents          float64 `json:"toc_cents,omitempty"`
	ElapsedMillis     float64 `json:"elapsed_millis,omitempty"`
	ThroughputPerHour float64 `json:"throughput_per_hour,omitempty"`
}

// stream is one online-advised workload: the compiled object mapping
// (frozen at initialization) and its manager. Its mutex serializes
// initialization against observation — per stream, so concurrent tenant
// streams never serialize on each other.
type stream struct {
	mu    sync.Mutex
	name  string
	objFP string
	comp  *compiled
	mgr   *online.Manager
	// shard is the stream's owning shard on the fleet ring, fixed at
	// creation: its frames fold on that shard's ingest worker and its
	// ticker re-advises run there.
	shard int
	// lastTouch is the stream's idle clock (unix nanos of the last
	// observe/readvise), read by the eviction janitor.
	lastTouch atomic.Int64
	// Last-decision summary for /v1/fleet rollups, guarded by mu: what
	// kind of decision last ran ("advise", "readvise", "confirmed"),
	// whether it was feasible, and its objective value. memoHit marks the
	// initial advise was answered by the fleet memo.
	lastKind     string
	lastFeasible bool
	lastTOC      float64
	memoHit      bool
	// pt is the stream's partitioning at partition granularity (nil at
	// object granularity); decisions' layouts are then unit-granular and
	// rendered under unit names.
	pt *catalog.Partitioning
	// wire maps binary-frame object indexes (position in the defining
	// observe's object list) onto the stream's catalog IDs. Published once
	// at initialization and immutable after, so the binary admission path
	// reads it lock-free (nil means the stream is not initialized yet).
	wire atomic.Pointer[[]catalog.ObjectID]
	// cfgJSON is the raw defining observe request body, kept verbatim so
	// snapshots can persist the stream's exact configuration and recovery
	// can replay it through the same initialization path (see snapshot.go).
	cfgJSON []byte
	// rvKey is the drift-invariant half of the stream's re-advise memo key
	// (defining fingerprint, box, SLA, alpha, granularity, migration
	// headroom), fixed at initialization; see Server.readvise.
	rvKey string
}

// granularity returns the stream's wire granularity label.
func (st *stream) granularity() string {
	if st.pt != nil {
		return "partition"
	}
	return "object"
}

// render maps a decision layout onto wire names at the stream's
// granularity.
func (st *stream) render(l catalog.Layout) map[string]string {
	if st.pt != nil {
		return renderUnitLayout(st.pt, l)
	}
	return st.comp.renderLayout(l)
}

// getStream returns the named stream, creating it (uninitialized) when
// absent and capacity allows. The existing-stream path is a lock-free
// sync.Map Load — the multi-tenant hot path; only creation (and
// rematerialization of an evicted stream) takes streamMu for the slot
// accounting.
func (s *Server) getStream(name string) (*stream, error) {
	if v, ok := s.streams.Load(name); ok {
		return v.(*stream), nil
	}
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	if v, ok := s.streams.Load(name); ok {
		return v.(*stream), nil
	}
	if st, err := s.rematerializeLocked(name); err != nil {
		return nil, err
	} else if st != nil {
		return st, nil
	}
	if s.streamN >= s.cfg.MaxStreams {
		return nil, &codedError{code: "stream_capacity",
			err: fmt.Errorf("stream capacity reached (%d); reuse an existing stream or restart dotserve with a larger -max-streams", s.cfg.MaxStreams)}
	}
	st := &stream{name: name, shard: s.ring.Shard(name)}
	s.streams.Store(name, st)
	s.streamN++
	return st, nil
}

// loadStream returns the named stream, rematerializing it from a parked
// eviction record when needed; (nil, nil) when the name is unknown.
func (s *Server) loadStream(name string) (*stream, error) {
	if v, ok := s.streams.Load(name); ok {
		return v.(*stream), nil
	}
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	if v, ok := s.streams.Load(name); ok {
		return v.(*stream), nil
	}
	return s.rematerializeLocked(name)
}

// dropStream unregisters a stream if the registry still maps its name to
// this exact instance (a racing re-definition may have replaced it).
func (s *Server) dropStream(st *stream) {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	if v, ok := s.streams.Load(st.name); ok && v.(*stream) == st {
		s.streams.Delete(st.name)
		s.streamN--
	}
}

// registerStream (re-)inserts an initialized stream. The slot was reserved
// by getStream; re-inserting after a successful init also heals the rare
// race where a failed concurrent definition dropped the entry while this
// one was waiting on st.mu. If a racing definition already re-took the
// name with a DIFFERENT instance, that one wins — never clobber a
// registered stream's manager and window history.
func (s *Server) registerStream(st *stream) {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	if v, ok := s.streams.Load(st.name); ok {
		if v.(*stream) != st {
			return
		}
		s.streams.Store(st.name, st)
		return
	}
	s.streams.Store(st.name, st)
	s.streamN++
}

// snapshotStreams copies the stream list for the ticker (never hold
// streamMu across a re-advise).
func (s *Server) snapshotStreams() []*stream {
	var out []*stream
	s.streams.Range(func(_, v any) bool {
		out = append(out, v.(*stream))
		return true
	})
	return out
}

func streamName(name string) string {
	if name == "" {
		return "default"
	}
	return name
}

// window lowers the spec's observation onto an online.Window over the
// stream's object IDs (object lists are identical, so the freshly compiled
// profile's IDs align with the stream catalog's).
func (c *compiled) window() online.Window {
	return online.Window{
		Profile: c.profile,
		CPU:     time.Duration(c.spec.CPUMillis * float64(time.Millisecond)),
		Elapsed: time.Duration(c.spec.ElapsedMillis * float64(time.Millisecond)),
		Txns:    c.spec.Txns,
	}
}

func driftOut(d online.Drift) DriftOut {
	return DriftOut{
		Divergence:     d.Divergence,
		Drifted:        d.Drifted,
		Thin:           d.Thin,
		RefFingerprint: d.RefFingerprint,
		ObsFingerprint: d.ObsFingerprint,
	}
}

func (s *Server) handleObserve(body []byte) (any, int, error) {
	req, err := decode[ObserveRequest](body)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	name := streamName(req.Stream)
	comp, err := compileWorkload(req.Workload)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	st, err := s.getStream(name)
	if err != nil {
		return nil, http.StatusTooManyRequests, err
	}
	st.touch()
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.mgr == nil {
		v, status, err := s.initStream(st, req, comp, body)
		if st.mgr == nil {
			// Initialization did not complete (bad config, infeasible
			// advise): release the stream slot so failed definitions cannot
			// exhaust MaxStreams. We still hold st.mu, so a concurrent
			// definer of the same name re-registers via initStream's
			// success path after us.
			s.dropStream(st)
		}
		return v, status, err
	}
	if fp := comp.objectsFingerprint(); fp != st.objFP {
		return nil, http.StatusConflict,
			fmt.Errorf("stream %q: object list differs from the stream's definition (got %s, want %s); use a new stream for a changed schema", name, fp[:12], st.objFP[:12])
	}
	// Translate the incoming profile onto the stream's object IDs by name:
	// IDs are assigned in declaration order so they coincide, but mapping
	// by name keeps the stream correct even if that invariant ever bends.
	w := comp.window()
	w.Profile = st.comp.renameProfile(comp, w.Profile)
	st.mgr.Observe(w)
	s.observed.Add(1)
	dr, _, err := st.mgr.Check()
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	d := driftOut(dr)
	return ObserveResponse{
		Stream:      name,
		Granularity: st.granularity(),
		Windows:     st.mgr.Stats().WindowsClosed,
		Feasible:    true,
		Drift:       &d,
	}, http.StatusOK, nil
}

// streamConfig lowers a defining observe onto the stream's online.Config
// and partitioning. It is the single configuration path shared by
// initStream and snapshot recovery's rebuildStream (see snapshot.go), so
// a restored stream is configured bit-identically to the original — the
// precondition for bit-identical re-advise decisions after recovery.
func (s *Server) streamConfig(req ObserveRequest, comp *compiled) (online.Config, *catalog.Partitioning, error) {
	if err := validSLA(req.SLA); err != nil {
		return online.Config{}, nil, fmt.Errorf("first observe for stream %q must configure the stream: %w", streamName(req.Stream), err)
	}
	box, err := parseBox(AdviseRequest{Box: req.Box, Classes: req.Classes})
	if err != nil {
		return online.Config{}, nil, err
	}
	partitioned, err := parseGranularity(req.Granularity)
	if err != nil {
		return online.Config{}, nil, err
	}
	var pt *catalog.Partitioning
	if partitioned {
		if pt, err = comp.partitioning(); err != nil {
			return online.Config{}, nil, err
		}
	}
	cfg := online.Config{
		Cat:              comp.cat,
		Box:              box,
		Concurrency:      comp.concurrency(),
		SLA:              req.SLA,
		AggregateWindows: req.AggregateWindows,
		DriftThreshold:   req.DriftThreshold,
		HeadroomFraction: req.HeadroomFraction,
		Budget:           s.budget,
		Partitioning:     pt,
	}
	if req.Alpha != 0 {
		model, compactModel, err := provision.DiscreteCostModels(searchCatalog(comp, pt), box, req.Alpha)
		if err != nil {
			return online.Config{}, nil, err
		}
		cfg.LayoutCost = model
		cfg.LayoutCostCompact = compactModel
	}
	return cfg, pt, nil
}

// pinWire publishes the stream's binary-frame index space: frame objects
// address the defining observe's object list by position (compileWorkload
// validated every name, so the lookups cannot miss). Published last — a
// non-nil wire list implies the stream's manager is in place.
func (st *stream) pinWire(comp *compiled) {
	wireIDs := make([]catalog.ObjectID, len(comp.spec.Objects))
	for i, o := range comp.spec.Objects {
		wireIDs[i] = comp.cat.Lookup(o.Name).ID
	}
	st.wire.Store(&wireIDs)
}

// initStream defines a stream from its first observe: builds the manager,
// ingests the first window and runs the initial cold advise. body is the
// raw request, retained as the stream's durable configuration. Callers
// hold st.mu.
func (s *Server) initStream(st *stream, req ObserveRequest, comp *compiled, body []byte) (any, int, error) {
	cfg, pt, err := s.streamConfig(req, comp)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	box := cfg.Box
	mgr, err := online.NewManager(cfg)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	mgr.Observe(comp.window())
	s.observed.Add(1)
	// The initial cold advise runs through the fleet memo: equal-workload
	// tenants (same fingerprint, box, SLA, alpha, granularity) coalesce
	// onto one search and share its result. Identical specs compile
	// identical catalogs — object IDs are assigned in declaration order —
	// so the shared layout is valid for every tenant with the key, and the
	// manager clones it before adopting.
	memoKey := fleetMemoKey(comp, box, req)
	memoHit := false
	dec, err := mgr.AdviseWith(func(in core.Input, opts core.Options) (*core.Result, error) {
		v, hit, err := s.fleetMemo.Do(memoKey, func() (any, error) { return core.OptimizeBest(in, opts) })
		if err != nil {
			return nil, err
		}
		memoHit = hit
		return v.(*core.Result), nil
	})
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	resp := ObserveResponse{
		Stream:      st.name,
		Granularity: req.Granularity,
		Initialized: true,
		Windows:     mgr.Stats().WindowsClosed,
		Feasible:    dec.Feasible,
	}
	if resp.Granularity == "" {
		resp.Granularity = "object"
	}
	if !dec.Feasible {
		// The stream stays UNDEFINED — the next observe must re-send the
		// configuration (e.g. at a corrected SLA) — so the wire flag must
		// say so. Diagnose against the catalog the search actually ran on.
		resp.Initialized = false
		resp.Failure = provision.InfeasibilityReason(searchCatalog(comp, pt), box, coreOptions(req.SLA))
		return resp, http.StatusOK, nil
	}
	if pt != nil {
		resp.Layout = renderUnitLayout(pt, dec.To)
	} else {
		resp.Layout = comp.renderLayout(dec.To)
	}
	resp.TOCCents = dec.Result.TOCCents
	st.comp = comp
	st.objFP = comp.objectsFingerprint()
	st.mgr = mgr
	st.pt = pt
	st.cfgJSON = body
	st.rvKey = readviseMemoBase(comp, box, req)
	st.memoHit = memoHit
	st.noteDecision("advise", dec.Feasible, dec.Result.TOCCents)
	st.pinWire(comp)
	s.registerStream(st)
	return resp, http.StatusOK, nil
}

func (s *Server) handleReadvise(body []byte) (any, int, error) {
	req, err := decode[ReadviseRequest](body)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	name := streamName(req.Stream)
	st, err := s.loadStream(name)
	if err != nil {
		return nil, http.StatusTooManyRequests, err
	}
	if st == nil {
		return nil, http.StatusNotFound, fmt.Errorf("unknown stream %q (define it with /observe first)", name)
	}
	st.touch()
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.mgr == nil {
		return nil, http.StatusConflict, fmt.Errorf("stream %q has no feasible initial advise yet", name)
	}
	dec, err := s.readvise(st, req.Force)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	resp := s.readviseResponse(st, dec)
	return resp, http.StatusOK, nil
}

// readviseMemoBase is the drift-invariant part of a stream's re-advise
// memo key: the defining workload fingerprint, box, SLA, alpha and
// granularity (fleetMemoKey) plus the migration headroom fraction, which
// parameterizes the incremental search's acceptance gate. The per-decision
// parts — the deployed seed layout and the observed-aggregate fingerprint
// — join in Server.readvise.
func readviseMemoBase(comp *compiled, box *device.Box, req ObserveRequest) string {
	return fmt.Sprintf("%s|%g", fleetMemoKey(comp, box, req), req.HeadroomFraction)
}

// readvise runs one re-advise for the stream through the fleet re-advise
// memo: tenants whose defining configuration, deployed layout and
// observed-aggregate fingerprint all agree run the drifted search once and
// share its result — the manager clones the layout before adopting, and
// migration planning stays per-tenant after the search returns. Both seam
// halves are keyed: the seeded incremental search on (base, seed layout,
// observed fingerprint) — equal keys imply an identical input, seed and
// migration gate — and the cold fallback on (base, observed fingerprint)
// alone, since no seed or gate shapes it. Callers hold st.mu.
func (s *Server) readvise(st *stream, force bool) (*online.Decision, error) {
	return st.mgr.ReAdviseWith(force,
		func(obsFP string, in core.Input, opts core.IncrementalOptions) (*core.Result, error) {
			key := "readvise-inc|" + st.rvKey + "|" + opts.Seed.Key() + "|" + obsFP
			v, _, err := s.fleetMemo.Do(key, func() (any, error) { return core.OptimizeIncremental(in, opts) })
			if err != nil {
				return nil, err
			}
			return v.(*core.Result), nil
		},
		func(obsFP string, in core.Input, opts core.Options) (*core.Result, error) {
			key := "readvise-cold|" + st.rvKey + "|" + obsFP
			v, _, err := s.fleetMemo.Do(key, func() (any, error) { return core.OptimizeBest(in, opts) })
			if err != nil {
				return nil, err
			}
			return v.(*core.Result), nil
		})
}

// readviseResponse lowers a decision onto the wire form. Callers hold
// st.mu.
func (s *Server) readviseResponse(st *stream, dec *online.Decision) ReadviseResponse {
	resp := ReadviseResponse{
		Stream:      st.name,
		Granularity: st.granularity(),
		Drift:       driftOut(dec.Drift),
		ReAdvised:   dec.ReAdvised,
		Incremental: dec.Incremental,
		// A decision that ran no search (no drift, thin window) makes no
		// feasibility claim: the deployed layout stands, report it fine.
		Feasible: dec.Feasible || dec.Result == nil,
	}
	if dec.Result != nil {
		resp.Evaluated = dec.Result.Evaluated
		resp.EstimatorCalls = dec.Result.EstimatorCalls
		resp.PlanMillis = float64(dec.Result.PlanTime) / float64(time.Millisecond)
		resp.TOCCents = dec.Result.TOCCents
		resp.ElapsedMillis = float64(dec.Result.Metrics.Elapsed) / float64(time.Millisecond)
		resp.ThroughputPerHour = dec.Result.Metrics.Throughput
		if !dec.Feasible {
			resp.Failure = "no feasible layout under the drifted profile — SLA unmet even by a full re-search; the deployed layout is unchanged"
		}
	}
	if dec.ReAdvised {
		resp.Layout = st.render(dec.To)
		resp.MovedObjects = len(dec.Migration.Moves)
		resp.MovedBytes = dec.Migration.Bytes
		resp.MigrationMillis = float64(dec.Migration.Time) / float64(time.Millisecond)
		s.readvised.Add(1)
	}
	if dec.Result != nil {
		kind := "confirmed"
		if dec.ReAdvised {
			kind = "readvise"
		}
		st.noteDecision(kind, dec.Feasible, resp.TOCCents)
	}
	return resp
}

// readviseTicker is one shard's background loop: every interval, re-advise
// every initialized stream the shard owns (drift-gated, never forced) and
// log the decisions. One ticker runs per shard, so a tenant's background
// re-advises happen on exactly its owning shard and a slow search on one
// shard never delays another shard's sweep. Each stream's step runs under
// guard, so one panicking search is counted and contained while the sweep
// — and the ticker — live on.
func (s *Server) readviseTicker(shard int, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			for _, st := range s.snapshotStreams() {
				if st.shard != shard {
					continue
				}
				s.guard("re-advise ticker", func() { s.readviseOne(st) })
			}
		}
	}
}

// readviseOne runs one stream's drift-gated ticker re-advise and logs the
// decision.
func (s *Server) readviseOne(st *stream) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.mgr == nil {
		return
	}
	dec, err := s.readvise(st, false)
	if err != nil {
		s.logf("readvise stream=%s error: %v", st.name, err)
		return
	}
	resp := s.readviseResponse(st, dec)
	if dec.ReAdvised {
		s.logf("readvise stream=%s drifted divergence=%.3f moved=%d bytes=%d migration=%v toc=%.4e evaluated=%d incremental=%v",
			st.name, dec.Drift.Divergence, resp.MovedObjects, resp.MovedBytes,
			dec.Migration.Time.Round(time.Millisecond), resp.TOCCents, resp.Evaluated, dec.Incremental)
	} else if dec.Drift.Drifted {
		s.logf("readvise stream=%s drifted divergence=%.3f but layout confirmed (evaluated=%d feasible=%v)",
			st.name, dec.Drift.Divergence, resp.Evaluated, dec.Feasible)
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// renameProfile maps a profile compiled against other's catalog onto the
// receiver's object IDs by object name.
func (c *compiled) renameProfile(other *compiled, p iosim.Profile) iosim.Profile {
	out := iosim.NewProfile()
	for id, v := range p {
		name, ok := other.names[id]
		if !ok {
			continue
		}
		o := c.cat.Lookup(name)
		if o == nil {
			continue
		}
		for _, t := range device.AllIOTypes {
			if v[t] > 0 {
				out.Add(o.ID, t, v[t])
			}
		}
	}
	return out
}

// coreOptions is the shared lowering of a request SLA onto core.Options.
func coreOptions(sla float64) core.Options { return core.Options{RelativeSLA: sla} }
