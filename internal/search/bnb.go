// Branch-and-bound enumeration on the compiled path: the M^N odometer of
// ExhaustiveCompact rebuilt as a best-first DFS with three pruning levers
// layered on top of the compact/delta evaluation pipeline —
//
//  1. tight admissible bounds: per-unit best-class storage and time floors
//     precomputed from the compiled tables and suffix-summed over the DFS
//     order (see UnitBounds), so every partial assignment is bounded by
//     achievable costs in O(1);
//  2. dominance: symmetric units (equal placement signatures) enumerate
//     only non-decreasing class assignments, one canonical layout per
//     symmetry orbit (see dominance.go for why that preserves the
//     deterministic tie-break);
//  3. expansion order: units sorted by descending cost spread, so
//     high-impact decisions bind near the root and the bound cuts deep.
//
// Parallel runs split the tree at a configurable depth into frontier
// subtrees served from one work-stealing deque per worker (Chase-Lev
// style: the owner pops newest from the bottom, thieves steal oldest from
// the top) around a shared incumbent whose TOC is published through one
// atomic word — a prune check never takes a lock. Results are bit-identical
// to the sequential, unpruned map enumeration: the bound only cuts
// subtrees that provably cannot beat the incumbent, and TOC ties resolve
// by the candidate's canonical rank — the odometer index in positional
// form — at any worker count.
package search

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"dotprov/internal/catalog"
	"dotprov/internal/device"
	"dotprov/internal/workload"
)

// BnBSpace is the branch-and-bound assignment space. Base, Free and
// Classes mirror CompactSpace; SizeGB (dense, by catalog.DenseIndex) and
// PriceCents feed the storage accumulator. Bounds enables cost bounding
// (nil: enumerate without a floor — the throughput objective), Sigs
// enables dominance (nil: no symmetry collapse).
type BnBSpace struct {
	Base       catalog.CompactLayout
	Free       []catalog.ObjectID
	Classes    []device.Class
	SizeGB     []float64
	PriceCents [device.NumClasses]float64
	Bounds     *UnitBounds
	Sigs       [][]byte
	// SetDigits declares the digit alphabet to be device.ClassSet masks
	// rather than single classes: Classes holds the masks (cast to
	// device.Class — both are one byte), placement bytes are masks, and a
	// digit's storage price is the sum of its member-class prices (every
	// replica charged its full size). Everything else — hashing, cloning,
	// delta chains, dominance, ranks — is byte-opaque and unchanged.
	SetDigits bool
}

// BnBOptions tunes the enumeration; the zero value is the default
// behaviour. No option changes the result, only the work done.
type BnBOptions struct {
	// SplitDepth fixes the parallel frontier depth (prefix length at which
	// the tree splits into stealable subtree tasks); 0 selects it
	// automatically from the worker count.
	SplitDepth int
	// NoReorder keeps the original unit order instead of the descending-
	// spread order (ablation and testing).
	NoReorder bool
	// NoDominance ignores Sigs (ablation and testing).
	NoDominance bool
}

// EnumStats describes one exhaustive enumeration's work: how large the
// space was, how much of it was actually evaluated, and where the rest
// went. The plain enumerations fill Candidates and BoundPruned only.
type EnumStats struct {
	// Candidates is the number of layouts evaluated.
	Candidates int
	// BoundPruned counts subtree cuts by the admissible bound (each cut
	// discards every completion under that node).
	BoundPruned int
	// Groups and GroupedUnits summarize dominance: how many symmetry groups
	// of two or more interchangeable units were found, covering how many
	// units.
	Groups       int
	GroupedUnits int
	// SpaceSize is the full assignment space |Classes|^|Free|;
	// CanonicalSize is what dominance collapses it to (equal when no
	// symmetry was found).
	SpaceSize     float64
	CanonicalSize float64
	// RootFloorCents is the admissible TOC floor of the whole space (0 when
	// enumerating without a bound). Comparing it to the winning TOC
	// measures bound tightness.
	RootFloorCents float64
	// SplitDepth and FrontierTasks describe the parallel split (0 on the
	// sequential path).
	SplitDepth    int
	FrontierTasks int
}

// add accumulates a worker's per-walk counters.
func (s *EnumStats) add(o EnumStats) {
	s.Candidates += o.Candidates
	s.BoundPruned += o.BoundPruned
}

func denseOf(id catalog.ObjectID) int { return catalog.DenseIndex(id) }

// bnbIncumbent is the shared incumbent: the best TOC is published through
// an atomic word so the hot prune check is one load, while adoption — rare
// — takes the mutex and settles TOC ties by canonical rank, the positional
// form of the odometer index (digit of Free[n-1] first), so "lower rank"
// is exactly "earlier in the unpruned enumeration".
type bnbIncumbent struct {
	bits atomic.Uint64 // Float64bits of the best feasible TOC; +Inf when none
	mu   sync.Mutex
	ok   bool
	ev   Eval
	rank []byte
}

func newBnBIncumbent() *bnbIncumbent {
	b := &bnbIncumbent{}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

// toc returns the current best feasible TOC (+Inf when none) without
// locking.
func (b *bnbIncumbent) toc() float64 { return math.Float64frombits(b.bits.Load()) }

func (b *bnbIncumbent) offer(ev Eval, rank []byte) {
	if ev.TOCCents > b.toc() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.ok || ev.TOCCents < b.ev.TOCCents ||
		(ev.TOCCents == b.ev.TOCCents && bytes.Compare(rank, b.rank) < 0) {
		b.ok, b.ev = true, ev
		b.rank = append(b.rank[:0], rank...)
		b.bits.Store(math.Float64bits(ev.TOCCents))
	}
}

func (b *bnbIncumbent) get() (Eval, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ev, b.ok
}

// wsDeque is the per-worker task queue. The frontier is generated up front
// and never grows, so this is the Chase-Lev discipline over a fixed
// backing array: the owner pops from the bottom (newest), thieves CAS the
// top (oldest) forward. The backing array is immutable once workers start,
// which removes the buffer-recycling hazards of the growable variant.
type wsDeque struct {
	tasks  [][]uint8
	top    atomic.Int64
	bottom atomic.Int64
}

func newWSDeque(tasks [][]uint8) *wsDeque {
	d := &wsDeque{tasks: tasks}
	d.bottom.Store(int64(len(tasks)))
	return d
}

// popBottom takes the newest task; owner-only.
func (d *wsDeque) popBottom() ([]uint8, bool) {
	b := d.bottom.Add(-1)
	t := d.top.Load()
	if b > t {
		return d.tasks[b], true
	}
	if b == t && d.top.CompareAndSwap(t, t+1) {
		// Won the race for the last task; park the deque empty behind it.
		d.bottom.Store(t + 1)
		return d.tasks[b], true
	}
	// Empty (b < t), or a thief won the last task. Either way top cannot
	// move again while bottom trails it, so parking bottom at top leaves
	// the deque empty.
	d.bottom.Store(d.top.Load())
	return nil, false
}

// steal takes the oldest task; safe from any goroutine.
func (d *wsDeque) steal() ([]uint8, bool) {
	for {
		t := d.top.Load()
		b := d.bottom.Load()
		if t >= b {
			return nil, false
		}
		task := d.tasks[t]
		if d.top.CompareAndSwap(t, t+1) {
			return task, true
		}
	}
}

// maxFrontier caps the number of pre-split subtree tasks.
const maxFrontier = 1 << 14

// bnbShared is the per-search read-mostly state every walker shares.
type bnbShared struct {
	e    *Engine
	cons workload.Constraints
	sp   *BnBSpace
	n, m int
	// order maps visit position -> free index; prevInGroup maps visit
	// position -> the previous visit position holding a unit of the same
	// symmetry group (-1 when none): that unit's digit is this one's floor.
	order       []int
	prevInGroup []int
	// densePos maps free index -> dense slot; clsIdx maps a compact-layout
	// class byte -> its digit (index in sp.Classes).
	densePos []int
	clsIdx   [256]uint8
	// Bounding state (bounding=false leaves the rest zero).
	bounding  bool
	prices    []float64
	minStore  []float64
	minTime   []time.Duration
	baseStore float64
	baseTime  time.Duration
	best      *bnbIncumbent
	stop      atomic.Bool
	errMu     sync.Mutex
	errRank   []byte
	err       error
}

// fail records an evaluation error, keeping the lowest-rank one so error
// reporting is deterministic at any worker count (the analogue of the
// plain paths' lowest-index rule), and stops the enumeration.
func (sh *bnbShared) fail(rank []byte, err error) {
	sh.errMu.Lock()
	if sh.err == nil || bytes.Compare(rank, sh.errRank) < 0 {
		sh.err = err
		sh.errRank = append(sh.errRank[:0], rank...)
	}
	sh.errMu.Unlock()
	sh.stop.Store(true)
}

// timeRow returns visit-independent unit u's per-class elapsed row.
func (sh *bnbShared) timeRow(u int) []time.Duration {
	return sh.sp.Bounds.unitTimeRow(u, sh.m)
}

// prune reports whether a floor cuts the subtree, with the float-safety
// slack that keeps the reassociated storage sum admissible.
func (sh *bnbShared) prune(store float64, t time.Duration) bool {
	return store*t.Hours()*(1-boundSlack) > sh.best.toc()
}

// bnbWalker is one worker's mutable walk state.
type bnbWalker struct {
	sh      *bnbShared
	scratch catalog.CompactLayout
	digits  []uint8
	rankBuf []byte
	prev    Eval
	prevOK  bool
	prevCls device.Class
	moves   [1]workload.ObjectMove
	stats   EnumStats
}

// computeRank fills rankBuf with the leaf's canonical rank: class digits
// read from the scratch layout in descending original free position, so
// byte comparison of two ranks orders them exactly like their odometer
// indices.
func (w *bnbWalker) computeRank() {
	sh := w.sh
	b := w.scratch.Bytes()
	for j := 0; j < sh.n; j++ {
		w.rankBuf[j] = sh.clsIdx[b[sh.densePos[sh.n-1-j]]]
	}
}

// offer routes a feasible leaf to the incumbent, computing the rank only
// when the candidate can actually win (TOC at or below the incumbent).
func (w *bnbWalker) offer(ev Eval) {
	if ev.TOCCents > w.sh.best.toc() {
		return
	}
	w.computeRank()
	w.sh.best.offer(ev, w.rankBuf)
}

// digitFloor is the lowest admissible digit at visit position i under the
// dominance constraint (non-decreasing within a symmetry group).
func (w *bnbWalker) digitFloor(i int) int {
	if p := w.sh.prevInGroup[i]; p >= 0 {
		return int(w.digits[p])
	}
	return 0
}

// rec walks visit positions [i, n) depth-first. storeAcc/timeAcc carry the
// running storage cost and elapsed time of the base plus every assigned
// unit (meaningless when not bounding). The innermost position chains
// siblings through one-move delta evaluation, exactly like the plain
// compact walk.
func (w *bnbWalker) rec(i int, storeAcc float64, timeAcc time.Duration) error {
	sh := w.sh
	u := sh.order[i]
	obj := sh.sp.Free[u]
	defer w.scratch.Unset(obj)
	var row []time.Duration
	var size float64
	if sh.bounding {
		row = sh.timeRow(u)
		size = sh.sp.SizeGB[sh.densePos[u]]
	}
	if i == sh.n-1 {
		// Innermost: siblings differ by one move; the first sibling of the
		// group needs a full estimate (levels above changed since the last
		// evaluation), the rest are deltas from their predecessor.
		w.prevOK = false
		for ci := w.digitFloor(i); ci < sh.m; ci++ {
			c := sh.sp.Classes[ci]
			w.scratch.SetRaw(obj, byte(c))
			w.digits[i] = uint8(ci)
			if sh.bounding && sh.prune(storeAcc+sh.prices[ci]*size+sh.minStore[i+1], timeAcc+row[ci]+sh.minTime[i+1]) {
				w.stats.BoundPruned++
				continue
			}
			var ev Eval
			var err error
			if w.prevOK {
				w.moves[0] = workload.ObjectMove{Obj: obj, From: w.prevCls, To: c}
				ev, err = sh.e.EvaluateDelta(w.prev, w.scratch, w.moves[:])
			} else {
				ev, err = sh.e.EvaluateCompact(w.scratch)
			}
			if err != nil {
				w.computeRank()
				sh.fail(w.rankBuf, err)
				return errStopped
			}
			w.stats.Candidates++
			w.prev, w.prevOK, w.prevCls = ev, true, c
			if ev.Feasible(sh.cons) {
				w.offer(ev)
			}
		}
		return nil
	}
	for ci := w.digitFloor(i); ci < sh.m; ci++ {
		w.scratch.SetRaw(obj, byte(sh.sp.Classes[ci]))
		w.digits[i] = uint8(ci)
		sAcc, tAcc := storeAcc, timeAcc
		if sh.bounding {
			sAcc += sh.prices[ci] * size
			tAcc += row[ci]
			if sh.prune(sAcc+sh.minStore[i+1], tAcc+sh.minTime[i+1]) {
				w.stats.BoundPruned++
				continue
			}
		}
		if sh.stop.Load() {
			return errStopped
		}
		if err := w.rec(i+1, sAcc, tAcc); err != nil {
			return err
		}
	}
	return nil
}

// runTask replays a frontier prefix into the walker's scratch state and
// walks the subtree below it.
func (w *bnbWalker) runTask(prefix []uint8) error {
	sh := w.sh
	storeAcc, timeAcc := sh.baseStore, sh.baseTime
	for i, d := range prefix {
		u := sh.order[i]
		ci := int(d)
		w.scratch.SetRaw(sh.sp.Free[u], byte(sh.sp.Classes[ci]))
		w.digits[i] = d
		if sh.bounding {
			storeAcc += sh.prices[ci] * sh.sp.SizeGB[sh.densePos[u]]
			timeAcc += sh.timeRow(u)[ci]
		}
	}
	if sh.bounding && sh.prune(storeAcc+sh.minStore[len(prefix)], timeAcc+sh.minTime[len(prefix)]) {
		// The whole stolen subtree is beaten by the incumbent.
		w.stats.BoundPruned++
		return nil
	}
	return w.rec(len(prefix), storeAcc, timeAcc)
}

// genFrontier enumerates the canonical prefixes of length d in visiting
// order — the parallel run's subtree tasks.
func genFrontier(sh *bnbShared, d int) [][]uint8 {
	var tasks [][]uint8
	digits := make([]uint8, d)
	var rec func(i int)
	rec = func(i int) {
		if i == d {
			tasks = append(tasks, append([]uint8(nil), digits...))
			return
		}
		lo := 0
		if p := sh.prevInGroup[i]; p >= 0 {
			lo = int(digits[p])
		}
		for c := lo; c < sh.m; c++ {
			digits[i] = uint8(c)
			rec(i + 1)
		}
	}
	rec(0)
	return tasks
}

// ExhaustiveBnB enumerates the space with branch-and-bound and returns the
// feasible evaluation with the minimum TOC, ties to the lowest canonical
// rank — the layout the plain enumeration's lowest-index rule would
// report, bit for bit — plus the enumeration's statistics. The bound and
// the dominance collapse only ever discard candidates that provably
// cannot change the result; see bound.go and dominance.go for the
// admissibility and canonicity arguments.
func (e *Engine) ExhaustiveBnB(cons workload.Constraints, sp BnBSpace, opt BnBOptions) (Eval, bool, EnumStats, error) {
	var stats EnumStats
	if e.cfg.Compiled == nil {
		return Eval{}, false, stats, fmt.Errorf("search: ExhaustiveBnB on an engine without a compiled config")
	}
	if len(sp.Classes) == 0 {
		return Eval{}, false, stats, fmt.Errorf("search: exhaustive space has no classes")
	}
	n, m := len(sp.Free), len(sp.Classes)
	if sp.Bounds != nil && (sp.SizeGB == nil || len(sp.Bounds.Time) != n*m) {
		return Eval{}, false, stats, fmt.Errorf("search: BnBSpace.Bounds requires SizeGB and a %dx%d time table", n, m)
	}
	if sp.Sigs != nil && len(sp.Sigs) != n {
		return Eval{}, false, stats, fmt.Errorf("search: BnBSpace.Sigs must cover every free unit")
	}

	scratch := sp.Base.Clone()
	if scratch.IsZero() {
		scratch = catalog.NewCompactLayout(e.cfg.Compiled.Cat.NumObjects())
	}
	for _, id := range sp.Free {
		scratch.Unset(id)
	}

	sh := &bnbShared{
		e: e, cons: cons, sp: &sp, n: n, m: m,
		best:     newBnBIncumbent(),
		bounding: sp.Bounds != nil,
	}
	sh.densePos = make([]int, n)
	for i, id := range sp.Free {
		sh.densePos[i] = denseOf(id)
	}
	for ci, c := range sp.Classes {
		sh.clsIdx[byte(c)] = uint8(ci)
	}

	// Dominance groups.
	rep := make([]int, n)
	for i := range rep {
		rep[i] = i
	}
	if sp.Sigs != nil && !opt.NoDominance {
		rep, stats.Groups, stats.GroupedUnits = groupUnits(sp.Sigs)
	}
	stats.SpaceSize = math.Pow(float64(m), float64(n))
	stats.CanonicalSize = collapsedSize(rep, m)

	if n == 0 {
		ev, err := e.EvaluateCompact(scratch)
		if err != nil {
			return Eval{}, false, stats, err
		}
		stats.Candidates = 1
		if ev.Feasible(cons) {
			return ev, true, stats, nil
		}
		return Eval{}, false, stats, nil
	}

	// Bounding state: base accumulators, per-unit floors, expansion order.
	var impact []float64
	if sh.bounding {
		sh.prices = classPrices(&sp)
		for i := 0; i < scratch.Len(); i++ {
			if c, ok := scratch.ClassAt(i); ok {
				sh.baseStore += digitPriceCents(&sp, byte(c)) * sp.SizeGB[i]
			}
		}
		sh.baseTime = sp.Bounds.Fixed
		// Whole-space floors (order-independent) anchor the spread heuristic.
		sFloor, tFloor := sh.baseStore, sh.baseTime
		for u := 0; u < n; u++ {
			row := sp.Bounds.unitTimeRow(u, m)
			sz := sp.SizeGB[sh.densePos[u]]
			s := sh.prices[0] * sz
			for _, p := range sh.prices[1:] {
				if v := p * sz; v < s {
					s = v
				}
			}
			sFloor += s
			tFloor += minOver(row)
		}
		impact = make([]float64, n)
		for u := 0; u < n; u++ {
			impact[u] = spread(sp.Bounds.unitTimeRow(u, m), sp.SizeGB[sh.densePos[u]], sh.prices, sFloor, tFloor)
		}
	}

	// Visiting order: descending original position by default — which
	// already realises each group's canonical (descending-position,
	// non-decreasing-digit) form — or descending spread when bounding, with
	// ties broken (group, then descending position) to keep groups
	// contiguous and canonical.
	sh.order = make([]int, n)
	for i := range sh.order {
		sh.order[i] = n - 1 - i
	}
	if sh.bounding && !opt.NoReorder {
		sortOrder(sh.order, func(a, b int) bool {
			if impact[a] != impact[b] {
				return impact[a] > impact[b]
			}
			if rep[a] != rep[b] {
				return rep[a] < rep[b]
			}
			return a > b
		})
	}
	sh.prevInGroup = make([]int, n)
	lastSeen := make([]int, n)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	for i, u := range sh.order {
		r := rep[u]
		sh.prevInGroup[i] = lastSeen[r]
		lastSeen[r] = i
	}
	if sh.bounding {
		sh.minStore, sh.minTime = suffixFloors(&sp, sh.order, sh.prices)
		stats.RootFloorCents = (sh.baseStore + sh.minStore[0]) * (sh.baseTime + sh.minTime[0]).Hours()
	}

	newWalker := func(cl catalog.CompactLayout) *bnbWalker {
		return &bnbWalker{sh: sh, scratch: cl, digits: make([]uint8, n), rankBuf: make([]byte, n)}
	}

	workers := e.Workers()
	if workers < 2 || n < 2 {
		w := newWalker(scratch)
		if err := w.rec(0, sh.baseStore, sh.baseTime); err != nil && err != errStopped {
			return Eval{}, false, stats, err
		}
		if sh.err != nil {
			return Eval{}, false, stats, sh.err
		}
		stats.add(w.stats)
		ev, ok := sh.best.get()
		return ev, ok, stats, nil
	}

	// Parallel: split the tree at the frontier depth into subtree tasks.
	depth := opt.SplitDepth
	if depth > n-1 {
		depth = n - 1
	}
	auto := depth <= 0
	if auto {
		depth = 1
	}
	tasks := genFrontier(sh, depth)
	if auto {
		for depth < n-1 && len(tasks) < workers*8 && len(tasks)*m <= maxFrontier {
			depth++
			tasks = genFrontier(sh, depth)
		}
	}
	stats.SplitDepth = depth
	stats.FrontierTasks = len(tasks)

	// Deal tasks round-robin, each deque loaded in reverse so the owner's
	// bottom pops ascend in frontier order (mirroring the sequential walk)
	// while thieves steal from the far end of a victim's range.
	deques := make([]*wsDeque, workers)
	for k := 0; k < workers; k++ {
		var mine [][]uint8
		for i := k; i < len(tasks); i += workers {
			mine = append(mine, tasks[i])
		}
		// Reverse: popBottom then yields ascending frontier order.
		for l, r := 0, len(mine)-1; l < r; l, r = l+1, r-1 {
			mine[l], mine[r] = mine[r], mine[l]
		}
		deques[k] = newWSDeque(mine)
	}

	walkers := make([]*bnbWalker, workers)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		w := newWalker(scratch.Clone())
		walkers[k] = w
		wg.Add(1)
		go func(k int, w *bnbWalker) {
			defer wg.Done()
			for {
				if sh.stop.Load() {
					return
				}
				task, ok := deques[k].popBottom()
				if !ok {
					for off := 1; off < workers && !ok; off++ {
						task, ok = deques[(k+off)%workers].steal()
					}
					if !ok {
						return
					}
				}
				if err := w.runTask(task); err != nil {
					return
				}
			}
		}(k, w)
	}
	wg.Wait()
	if sh.err != nil {
		return Eval{}, false, stats, sh.err
	}
	for _, w := range walkers {
		stats.add(w.stats)
	}
	ev, ok := sh.best.get()
	return ev, ok, stats, nil
}

// sortOrder sorts the visiting order with an insertion sort — n is small
// relative to the space it controls, and avoiding sort.Slice keeps the
// comparator allocation off the setup path.
func sortOrder(order []int, less func(a, b int) bool) {
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && less(order[j], order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
}
