// Replicated (class-set) search: the entry points that place each unit on
// a *set* of storage classes instead of exactly one — a scan-friendly copy
// on cheap sequential storage plus a point-lookup copy on fast random
// storage, each query routed to its best copy, every write charged to all
// copies, storage summed over members.
//
// The machinery is the single-class pipeline run over a different digit
// alphabet. A replicated candidate is a catalog.CompactLayout whose bytes
// are device.ClassSet masks (catalog.Layout with mask values on the map
// path); the search engine hashes, clones and delta-chains bytes without
// interpreting them, so one dedicated engine per replicated search — built
// by Input.setEngine with mask-aware estimate/price/capacity hooks — reuses
// the whole memoized evaluation pipeline, the DOT sweeps, and the
// branch-and-bound DFS (BnBSpace.SetDigits) unchanged. Masks and class
// bytes collide numerically (Singleton(c) != c), which is exactly why the
// engine is dedicated: the two key alphabets must never share a memo.
//
// Restricted to singleton sets the replicated search IS the single-class
// search: same baseline, same seeds, same move walk, same arithmetic, so
// layouts and TOCs are bit-identical (property-tested). Extra copies enter
// only through the refinement sweep's add/drop/swap moves and the
// exhaustive enumeration's wider digit alphabet.
package core

import (
	"fmt"
	"math"
	"time"

	"dotprov/internal/catalog"
	"dotprov/internal/device"
	"dotprov/internal/search"
	"dotprov/internal/workload"
)

// ReplicationConfig is Input.Replication: how the replicated entry points
// search the class-set space.
type ReplicationConfig struct {
	// Enabled marks the input as wanting replicated advise. The core entry
	// points do not consult it — calling OptimizeReplicated is the opt-in —
	// but the serving and online layers use it to pick between the
	// single-class and replicated searches.
	Enabled bool
	// MaxReplicas caps the copies per unit. Values below 1 mean no cap (up
	// to one copy per storage class); 1 restricts the search to singleton
	// sets, which reproduces the single-class result bit for bit.
	MaxReplicas int
}

// maxReplicas resolves the per-unit copy cap.
func (r ReplicationConfig) maxReplicas() int {
	if r.MaxReplicas < 1 || r.MaxReplicas > device.NumClasses {
		return device.NumClasses
	}
	return r.MaxReplicas
}

// ReplicaResult is a replicated recommendation. The embedded Result carries
// the economics (TOC, metrics, constraints, search statistics); its Layout
// field holds the single-class collapse when every unit landed on exactly
// one copy, and nil when the recommendation is genuinely replicated.
type ReplicaResult struct {
	*Result
	// SetLayout maps every unit to the recommended set of classes holding a
	// copy.
	SetLayout catalog.SetLayout
}

// MaxCopies returns the largest replica count of any unit — 1 when the
// recommendation degenerates to a single-class layout.
func (r *ReplicaResult) MaxCopies() int {
	max := 0
	for _, set := range r.SetLayout {
		if c := set.Count(); c > max {
			max = c
		}
	}
	return max
}

// ReplicatedCopies counts the extra copies the recommendation places beyond
// one per unit.
func (r *ReplicaResult) ReplicatedCopies() int {
	extra := 0
	for _, set := range r.SetLayout {
		if c := set.Count(); c > 1 {
			extra += c - 1
		}
	}
	return extra
}

// newReplicaResult finalizes a replicated search's Result: its Layout field
// holds the mask-valued working layout, which becomes the SetLayout; the
// Layout slot is re-pointed at the single-class collapse (nil when the
// recommendation holds multi-copy units).
func newReplicaResult(res *Result) *ReplicaResult {
	sl := maskToSetLayout(res.Layout)
	if single, ok := sl.SingleLayout(); ok {
		res.Layout = single
	} else {
		res.Layout = nil
	}
	return &ReplicaResult{Result: res, SetLayout: sl}
}

// maskToSetLayout reinterprets a mask-valued working layout as a SetLayout.
func maskToSetLayout(l catalog.Layout) catalog.SetLayout {
	out := make(catalog.SetLayout, len(l))
	for id, v := range l {
		out[id] = device.ClassSet(v)
	}
	return out
}

// setToMaskLayout is the inverse: a SetLayout as the mask-valued
// catalog.Layout the set engine's map path evaluates.
func setToMaskLayout(l catalog.SetLayout) catalog.Layout {
	out := make(catalog.Layout, len(l))
	for id, set := range l {
		out[id] = device.Class(set)
	}
	return out
}

// setTOC prices a mask-valued layout under the linear replicated cost
// model: every member class of a unit's set is charged the unit's full
// size. The per-class accumulation matches Input.toc's single-class path
// expression for expression, so singleton-mask layouts price
// bit-identically.
func (in Input) setTOC(m workload.Metrics, l catalog.Layout) (float64, error) {
	perHour, err := maskToSetLayout(l).CostCentsPerHour(in.Cat, in.Box)
	if err != nil {
		return 0, err
	}
	if m.Throughput > 0 {
		return perHour / m.Throughput, nil
	}
	return perHour * m.Elapsed.Hours(), nil
}

// setEngine builds the dedicated evaluation engine of a replicated search:
// the estimator's replica form behind the same memoized estimate → price →
// check pipeline, with the compiled (compact/delta) path engaged whenever
// the estimator compiles. Replication prices only under the linear model —
// discrete cost models read class bytes and would misprice masks — so a
// custom LayoutCost is refused.
func (in Input) setEngine() (*search.Engine, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	if in.LayoutCost != nil || in.LayoutCostCompact != nil {
		return nil, fmt.Errorf("core: replicated search supports only the linear cost model")
	}
	mapEst, ok := workload.NewSetEstimator(in.Est)
	if !ok {
		return nil, fmt.Errorf("core: estimator %T has no replica form", in.Est)
	}
	cfg := search.Config{
		Est:  mapEst,
		Cost: in.setTOC,
		CapacityOK: func(l catalog.Layout) bool {
			return maskToSetLayout(l).CheckCapacity(in.Cat, in.Box) == nil
		},
		Workers: in.Workers,
		Budget:  in.Budget,
	}
	if !in.NoCompile {
		if cse, ok := workload.CompileSetEstimator(in.Est, in.Cat); ok {
			ce := cse.(workload.CompactEstimator)
			de, _ := cse.(workload.DeltaEstimator)
			sizes := in.Cat.DenseSizeBytes()
			cfg.Compiled = &search.CompiledConfig{
				Cat:   in.Cat,
				Est:   ce,
				Delta: de,
				Cost: func(m workload.Metrics, cl catalog.CompactLayout) (float64, error) {
					ph, err := cl.SetCostCentsPerHourDense(sizes, in.Box)
					if err != nil {
						return 0, err
					}
					if m.Throughput > 0 {
						return ph / m.Throughput, nil
					}
					return ph * m.Elapsed.Hours(), nil
				},
				CapacityOK: func(cl catalog.CompactLayout) bool {
					return cl.SetFitsCapacityDense(sizes, in.Box)
				},
			}
		}
	}
	return search.New(cfg)
}

// evaluateUniformSet evaluates the "every unit on this set" layout, staying
// compact on the compiled path.
func (in Input) evaluateUniformSet(eng *search.Engine, set device.ClassSet) (search.Eval, error) {
	if eng.Compiled() {
		return eng.EvaluateCompact(catalog.CompactUniformSet(in.Cat, set))
	}
	return eng.Evaluate(catalog.NewUniformLayout(in.Cat, device.Class(set)))
}

// prepSet mirrors prep for the set engine: evaluate L0 — every unit on the
// singleton set of the most expensive class, which estimates and prices
// bit-identically to the single-class L0 — and derive the constraint set.
func (in Input) prepSet(opts Options, eng *search.Engine) (device.Class, search.Eval, workload.Constraints, error) {
	var zero search.Eval
	if err := opts.validateSLA(); err != nil {
		return 0, zero, workload.Constraints{}, err
	}
	l0Class := in.Box.MostExpensive().Class
	ev0, err := in.evaluateUniformSet(eng, device.Singleton(l0Class))
	if err != nil {
		return 0, zero, workload.Constraints{}, fmt.Errorf("core: estimating baseline: %w", err)
	}
	baseline := ev0.Metrics
	if opts.Baseline != nil {
		baseline = *opts.Baseline
	}
	cons := workload.Constraints{Relative: opts.RelativeSLA, Baseline: baseline}
	return l0Class, ev0, cons, nil
}

// liftMoves lifts a scored single-class move list into the mask alphabet:
// every placement class becomes its singleton set. Scores, grouping and
// order are untouched, so the lifted sweep walks move for move with the
// single-class sweep.
func liftMoves(moves []Move) []Move {
	out := make([]Move, len(moves))
	for i, m := range moves {
		p := make(Pattern, len(m.Placement))
		for j, c := range m.Placement {
			p[j] = device.Class(device.Singleton(c))
		}
		out[i] = m
		out[i].Placement = p
	}
	return out
}

// replicaTransitions precomputes, per current class set, the candidate
// target sets of the refinement sweep's three move kinds — add one copy,
// drop one copy, swap one copy for another class — restricted to the box's
// classes and the per-unit copy cap, in ascending mask order (deterministic
// sweep order).
func replicaTransitions(avail device.ClassSet, maxReplicas int) [][]device.ClassSet {
	out := make([][]device.ClassSet, device.NumClassSets)
	for s := 1; s < device.NumClassSets; s++ {
		cur := device.ClassSet(s)
		if !cur.Valid() || cur&^avail != 0 {
			continue
		}
		var ts []device.ClassSet
		for t := 1; t < device.NumClassSets; t++ {
			tgt := device.ClassSet(t)
			if tgt == cur || !tgt.Valid() || tgt&^avail != 0 || tgt.Count() > maxReplicas {
				continue
			}
			switch (cur ^ tgt).Count() {
			case 1:
				// add (tgt ⊃ cur) or drop (tgt ⊂ cur) one copy
			case 2:
				if tgt.Count() != cur.Count() {
					continue // two-step change, reachable via add+drop
				}
				// swap one member for another
			default:
				continue
			}
			ts = append(ts, tgt)
		}
		out[s] = ts
	}
	return out
}

// replicaRefineCompact is the refinement sweep on the compiled path: for
// every unit in catalog order, try each add/drop/swap transition of its
// current set through one-move delta evaluation, adopt guarded TOC
// improvements, and repeat per unit until no transition helps. A non-nil
// gate vets candidates exactly as in the DOT sweeps (the online migration
// budget plugs in here).
func replicaRefineCompact(eng *search.Engine, in Input, ev0 search.Eval, cons workload.Constraints, res *Result, passes int, gate func(search.Eval, workload.Constraints) bool, trans [][]device.ClassSet) error {
	cur := ev0
	curTOC := ev0.TOCCents
	curFeasible := ev0.Feasible(cons)
	scratch := ev0.Compact.Clone()
	var moves [1]workload.ObjectMove
	objs := in.Cat.Objects()
	for pass := 0; pass < passes; pass++ {
		changed := false
		for _, o := range objs {
			from, placed := scratch.Class(o.ID)
			if !placed {
				continue
			}
			// Chase improvements on this unit to a local fixed point; each
			// adoption changes the transition list, so re-resolve it. The step
			// bound caps pathological equal-TOC cycles.
			for step := 0; step < device.NumClassSets; step++ {
				improved := false
				for _, tgt := range trans[byte(from)] {
					to := device.Class(tgt)
					scratch.SetRaw(o.ID, byte(to))
					moves[0] = workload.ObjectMove{Obj: o.ID, From: from, To: to}
					ev, err := eng.EvaluateDelta(cur, scratch, moves[:])
					if err != nil {
						return err
					}
					res.Evaluated++
					accepted := (gate == nil || gate(ev, cons)) && res.consider(ev, cons)
					if !accepted || (curFeasible && ev.TOCCents >= curTOC) {
						scratch.SetRaw(o.ID, byte(from))
						continue
					}
					cur, curTOC, curFeasible = ev, ev.TOCCents, true
					from = to
					improved, changed = true, true
					break
				}
				if !improved {
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	return nil
}

// replicaRefineMap mirrors replicaRefineCompact on the map path, candidate
// for candidate.
func replicaRefineMap(eng *search.Engine, in Input, ev0 search.Eval, cons workload.Constraints, res *Result, passes int, gate func(search.Eval, workload.Constraints) bool, trans [][]device.ClassSet) error {
	l := ev0.LayoutMap().Clone()
	curTOC := ev0.TOCCents
	curFeasible := ev0.Feasible(cons)
	objs := in.Cat.Objects()
	for pass := 0; pass < passes; pass++ {
		changed := false
		for _, o := range objs {
			from, placed := l[o.ID]
			if !placed {
				continue
			}
			for step := 0; step < device.NumClassSets; step++ {
				improved := false
				for _, tgt := range trans[byte(from)] {
					lnew := l.Clone()
					lnew[o.ID] = device.Class(tgt)
					ev, err := eng.Evaluate(lnew)
					if err != nil {
						return err
					}
					res.Evaluated++
					accepted := (gate == nil || gate(ev, cons)) && res.consider(ev, cons)
					if !accepted || (curFeasible && ev.TOCCents >= curTOC) {
						continue
					}
					l = lnew
					curTOC, curFeasible = ev.TOCCents, true
					from = device.Class(tgt)
					improved, changed = true, true
					break
				}
				if !improved {
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	return nil
}

// optimizeReplicatedWith is optimizeWith over the set engine: the same
// baseline, uniform singleton seeds, and DOT move sweep (lifted to
// singleton masks), followed — when trans is non-nil, i.e. the copy cap
// admits replication — by the add/drop/swap refinement sweep from the
// sweep's incumbent. With a cap of one the flow reduces exactly to
// optimizeWith, which is the bit-parity property the singleton tests pin.
func optimizeReplicatedWith(in Input, opts Options, eng *search.Engine, moves []Move, trans [][]device.ClassSet) (*Result, error) {
	start := time.Now()
	stats0 := eng.Stats()
	l0Class, ev0, cons, err := in.prepSet(opts, eng)
	if err != nil {
		return nil, err
	}

	res := &Result{Constraints: cons, Evaluated: 1}
	res.consider(ev0, cons)

	// Uniform singleton anchors, exactly the single-class seeds.
	if eng.Compiled() {
		for _, d := range in.Box.SortedByPrice() {
			if d.Class == l0Class {
				continue
			}
			ev, err := eng.EvaluateCompact(catalog.CompactUniformSet(in.Cat, device.Singleton(d.Class)))
			if err != nil {
				return nil, err
			}
			res.Evaluated++
			res.consider(ev, cons)
		}
	} else {
		var seeds []catalog.Layout
		for _, d := range in.Box.SortedByPrice() {
			if d.Class == l0Class {
				continue
			}
			seeds = append(seeds, catalog.NewUniformLayout(in.Cat, device.Class(device.Singleton(d.Class))))
		}
		seedEvs, err := eng.EvaluateAll(seeds)
		if err != nil {
			return nil, err
		}
		for _, ev := range seedEvs {
			res.Evaluated++
			res.consider(ev, cons)
		}
	}

	passes := opts.Passes
	if passes < 1 {
		passes = 2
	}
	if eng.Compiled() && !ev0.Compact.IsZero() {
		err = dotSweepCompact(opts, eng, moves, ev0, cons, res, passes, nil)
	} else {
		err = dotSweepMap(opts, eng, moves, ev0, cons, res, passes, nil)
	}
	if err != nil {
		return nil, err
	}

	if trans != nil {
		seedEv := ev0
		if res.haveBest {
			seedEv = res.best
		}
		if eng.Compiled() && !seedEv.Compact.IsZero() {
			err = replicaRefineCompact(eng, in, seedEv, cons, res, passes, nil, trans)
		} else {
			err = replicaRefineMap(eng, in, seedEv, cons, res, passes, nil, trans)
		}
		if err != nil {
			return nil, err
		}
	}

	if !res.Feasible {
		res.best = ev0
		res.haveBest = true
		res.TOCCents = ev0.TOCCents
		res.Metrics = ev0.Metrics
	}
	res.Layout = res.best.LayoutClone()
	res.EstimatorCalls = eng.Stats().Sub(stats0).EstimatorCalls
	res.PlanTime = time.Since(start)
	res.Search.Candidates = res.Evaluated
	return res, nil
}

// OptimizeReplicated is OptimizeBest over class sets: both application
// policies — guarded and greedy — sweep the singleton-lifted move list,
// each then refines its incumbent with add/drop/swap replica moves, and
// the feasible result with the lower TOC wins. The sweeps run sequentially
// against one shared engine (the second revisits the first's memoized
// evaluations); with Input.Replication.MaxReplicas == 1 the result is
// bit-identical to OptimizeBest.
func OptimizeReplicated(in Input, opts Options) (*ReplicaResult, error) {
	eng, err := in.setEngine()
	if err != nil {
		return nil, err
	}
	if err := opts.validateSLA(); err != nil {
		return nil, err
	}
	moves, err := in.enumerateMoves(eng)
	if err != nil {
		return nil, err
	}
	moves = liftMoves(moves)
	var trans [][]device.ClassSet
	if cap := in.Replication.maxReplicas(); cap > 1 {
		trans = replicaTransitions(device.NewClassSet(in.Box.Classes()...), cap)
	}
	guarded, greedy := opts, opts
	guarded.GreedyApply = false
	greedy.GreedyApply = true
	a, err := optimizeReplicatedWith(in, guarded, eng, moves, trans)
	if err != nil {
		return nil, err
	}
	b, err := optimizeReplicatedWith(in, greedy, eng, moves, trans)
	if err != nil {
		return nil, err
	}
	best := a
	if b.Feasible && (!a.Feasible || b.TOCCents < a.TOCCents) {
		best = b
	}
	best.Evaluated = a.Evaluated + b.Evaluated
	best.PlanTime = a.PlanTime + b.PlanTime
	best.EstimatorCalls = eng.Stats().EstimatorCalls
	best.Search.Candidates = best.Evaluated
	return newReplicaResult(best), nil
}

// ReplicatedIncrementalOptions parameterizes OptimizeReplicatedIncremental:
// the regular options plus the deployed replica layout to start from and an
// optional candidate admission gate (the online migration budget).
type ReplicatedIncrementalOptions struct {
	Options
	// Seed is the currently deployed replicated layout.
	Seed catalog.SetLayout
	// Accept optionally vets a candidate before adoption, exactly like
	// IncrementalOptions.Accept. Candidates reach it with class-set masks in
	// their layouts.
	Accept func(ev search.Eval, cons workload.Constraints) bool
}

// OptimizeReplicatedIncremental is OptimizeIncremental over class sets:
// seed the sweep with the deployed replica layout, walk gated TOC-improving
// singleton moves and add/drop/swap refinements away from it, and report
// the seed's numbers when nothing gated is feasible. Copies drop as freely
// as they are added — a reverted workload sheds its extra analytics copy on
// the next re-advise.
func OptimizeReplicatedIncremental(in Input, opts ReplicatedIncrementalOptions) (*ReplicaResult, error) {
	eng, err := in.setEngine()
	if err != nil {
		return nil, err
	}
	if err := opts.validateSLA(); err != nil {
		return nil, err
	}
	if len(opts.Seed) == 0 {
		return nil, fmt.Errorf("core: OptimizeReplicatedIncremental requires a seed layout")
	}
	moves, err := in.enumerateMoves(eng)
	if err != nil {
		return nil, err
	}
	moves = liftMoves(moves)
	var trans [][]device.ClassSet
	if cap := in.Replication.maxReplicas(); cap > 1 {
		trans = replicaTransitions(device.NewClassSet(in.Box.Classes()...), cap)
	}
	start := time.Now()
	stats0 := eng.Stats()
	_, _, cons, err := in.prepSet(opts.Options, eng)
	if err != nil {
		return nil, err
	}
	evSeed, err := in.evaluateSetSeed(eng, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("core: estimating seed layout: %w", err)
	}
	res := &Result{Constraints: cons, Evaluated: 2} // L0 baseline + seed
	// Staying put moves zero bytes, so the seed bypasses the gate.
	res.consider(evSeed, cons)

	passes := opts.Passes
	if passes < 1 {
		passes = 1
	}
	sweepOpts := opts.Options
	sweepOpts.GreedyApply = false
	if eng.Compiled() && !evSeed.Compact.IsZero() {
		err = dotSweepCompact(sweepOpts, eng, moves, evSeed, cons, res, passes, opts.Accept)
	} else {
		err = dotSweepMap(sweepOpts, eng, moves, evSeed, cons, res, passes, opts.Accept)
	}
	if err != nil {
		return nil, err
	}
	if trans != nil {
		seedEv := evSeed
		if res.haveBest {
			seedEv = res.best
		}
		if eng.Compiled() && !seedEv.Compact.IsZero() {
			err = replicaRefineCompact(eng, in, seedEv, cons, res, passes, opts.Accept, trans)
		} else {
			err = replicaRefineMap(eng, in, seedEv, cons, res, passes, opts.Accept, trans)
		}
		if err != nil {
			return nil, err
		}
	}
	if !res.Feasible {
		res.best = evSeed
		res.haveBest = true
		res.TOCCents = evSeed.TOCCents
		res.Metrics = evSeed.Metrics
	}
	res.Layout = res.best.LayoutClone()
	res.EstimatorCalls = eng.Stats().Sub(stats0).EstimatorCalls
	res.PlanTime = time.Since(start)
	res.Search.Candidates = res.Evaluated
	return newReplicaResult(res), nil
}

// evaluateSetSeed runs a replicated seed layout through the set engine,
// staying compact on the compiled path.
func (in Input) evaluateSetSeed(eng *search.Engine, seed catalog.SetLayout) (search.Eval, error) {
	if eng.Compiled() {
		if cl, ok := catalog.CompactFromSetLayout(in.Cat, seed); ok {
			return eng.EvaluateCompact(cl)
		}
	}
	return eng.Evaluate(setToMaskLayout(seed))
}

// ExhaustiveReplicated enumerates every replicated layout L: O -> 2^D
// (member sets restricted to the box's classes and the copy cap) and
// returns the feasible one with minimum TOC — the quality yardstick of the
// replicated search, and the space the ROADMAP warns explodes from |D|^n to
// (2^|D|)^n. The walk is the branch-and-bound DFS over set digits: suffix
// floors from exact per-(unit, set) storage prices and elapsed rows,
// dominance over per-set signature rows, one-move delta chains at the
// innermost level, work-stealing parallel splits. Input.Search.DisableBnB
// drops the bound and the dominance collapse (the "plain" enumeration the
// benchmarks gate against); results are identical either way.
func ExhaustiveReplicated(in Input, opts Options) (*ReplicaResult, error) {
	eng, err := in.setEngine()
	if err != nil {
		return nil, err
	}
	if !eng.Compiled() {
		return nil, fmt.Errorf("core: ExhaustiveReplicated requires the compiled path (estimator %T does not compile, or NoCompile is set)", in.Est)
	}
	start := time.Now()
	stats0 := eng.Stats()
	_, ev0, cons, err := in.prepSet(opts, eng)
	if err != nil {
		return nil, err
	}
	res := &Result{Constraints: cons}
	throughput := ev0.Metrics.Throughput > 0

	digits := device.EnumerateClassSets(in.Box.Classes(), in.Replication.maxReplicas())
	bsp := in.replicaBnBSpace(eng, digits, throughput)
	if in.Search.DisableBnB {
		bsp.Bounds, bsp.Sigs = nil, nil
	}
	n, m := len(bsp.Free), len(digits)
	if math.Pow(float64(m), float64(n)) > MaxExhaustiveLayouts {
		if search.CanonicalSpaceSize(bsp.Sigs, n, m) > MaxExhaustiveLayouts {
			return nil, fmt.Errorf("core: replicated exhaustive search over %d objects x %d class sets exceeds the %d-layout bound",
				n, m, MaxExhaustiveLayouts)
		}
	}
	best, found, st, err := eng.ExhaustiveBnB(cons, bsp, search.BnBOptions{
		SplitDepth:  in.Search.SplitDepth,
		NoReorder:   in.Search.NoReorder,
		NoDominance: in.Search.NoDominance,
	})
	if err != nil {
		return nil, err
	}
	res.Evaluated = st.Candidates
	res.Search = st
	if found {
		res.Feasible = true
		res.best = best
		res.haveBest = true
		res.TOCCents = best.TOCCents
		res.Metrics = best.Metrics
		res.Layout = best.LayoutClone()
	} else {
		res.Layout = ev0.LayoutClone()
		res.TOCCents = ev0.TOCCents
		res.Metrics = ev0.Metrics
	}
	res.EstimatorCalls = eng.Stats().Sub(stats0).EstimatorCalls
	res.PlanTime = time.Since(start)
	return newReplicaResult(res), nil
}

// replicaBnBSpace assembles the set-digit branch-and-bound space: every
// catalog object free, the digit alphabet the enumerated class sets, exact
// per-digit storage prices (the SetDigits contract), elapsed bounds from
// the estimator's per-(unit, set) decomposition, and dominance signatures
// from its per-set rows. The linear cost model is guaranteed here —
// setEngine refuses custom cost models — so bounding and dominance need no
// further gating beyond the throughput objective.
func (in Input) replicaBnBSpace(eng *search.Engine, digits []device.ClassSet, throughput bool) search.BnBSpace {
	objs := in.Cat.Objects()
	free := make([]catalog.ObjectID, len(objs))
	for i, o := range objs {
		free[i] = o.ID
	}
	classes := make([]device.Class, len(digits))
	for i, d := range digits {
		classes[i] = device.Class(d)
	}
	bsp := search.BnBSpace{
		Base:      catalog.NewCompactLayout(in.Cat.NumObjects()),
		Free:      free,
		Classes:   classes,
		SetDigits: true,
	}
	bsp.SizeGB, bsp.PriceCents = in.denseCostTables()
	est := eng.CompactEstimator()
	m := len(digits)
	if !throughput {
		if dec, ok := est.(workload.SetElapsedDecomposable); ok {
			table := make([]time.Duration, in.Cat.NumObjects()*device.NumClassSets)
			if fixed, ok := dec.AccumulateSetElapsedTable(table); ok {
				ub := &search.UnitBounds{Time: make([]time.Duration, len(free)*m), Fixed: fixed}
				for i, id := range free {
					d := catalog.DenseIndex(id)
					if d < 0 || (d+1)*device.NumClassSets > len(table) {
						continue
					}
					row := table[d*device.NumClassSets : (d+1)*device.NumClassSets]
					for ci, set := range digits {
						ub.Time[i*m+ci] = row[set]
					}
				}
				bsp.Bounds = ub
			}
		}
	}
	if !in.Search.NoDominance {
		if sig, ok := est.(workload.SetPlacementSignable); ok {
			sizes := in.Cat.DenseSizeBytes()
			sigs := make([][]byte, len(free))
			for i, id := range free {
				s := sig.AppendSetPlacementSignature(nil, id)
				var sz int64
				if d := catalog.DenseIndex(id); d >= 0 && d < len(sizes) {
					sz = sizes[d]
				}
				sigs[i] = append(s,
					byte(uint64(sz)>>56), byte(uint64(sz)>>48), byte(uint64(sz)>>40), byte(uint64(sz)>>32),
					byte(uint64(sz)>>24), byte(uint64(sz)>>16), byte(uint64(sz)>>8), byte(uint64(sz)))
			}
			bsp.Sigs = sigs
		}
	}
	return bsp
}

// PartitionedReplicaResult is a unit-granular replicated recommendation:
// the inner ReplicaResult's SetLayout is keyed by the partitioning's unit
// catalog.
type PartitionedReplicaResult struct {
	// ReplicaResult is the unit-granular replicated search result.
	*ReplicaResult
	// Partitioning maps the units back to their objects.
	Partitioning *catalog.Partitioning
}

// ObjectSetLayout collapses the recommended unit set layout back to object
// granularity. ok=false means some object's units landed on different class
// sets — the recommendation is genuinely sub-object.
func (r *PartitionedReplicaResult) ObjectSetLayout() (catalog.SetLayout, bool) {
	if r.ReplicaResult == nil || r.SetLayout == nil {
		return nil, false
	}
	collapsed, ok := r.Partitioning.CollapseLayout(setToMaskLayout(r.SetLayout))
	if !ok {
		return nil, false
	}
	return maskToSetLayout(collapsed), true
}

// OptimizeReplicatedPartitioned runs the replicated DOT search at partition
// granularity: the input is lowered onto the partitioning's unit catalog
// (Input.Partitioned) and OptimizeReplicated searches per-unit class sets —
// a hot extent can hold a second point-lookup copy while its cold tail
// keeps one cheap sequential copy.
func OptimizeReplicatedPartitioned(in Input, pt *catalog.Partitioning, opts Options) (*PartitionedReplicaResult, error) {
	uin, err := in.Partitioned(pt)
	if err != nil {
		return nil, err
	}
	res, err := OptimizeReplicated(uin, opts)
	if err != nil {
		return nil, err
	}
	return &PartitionedReplicaResult{ReplicaResult: res, Partitioning: pt}, nil
}
