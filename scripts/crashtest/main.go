// Command crashtest is the fault-injected recovery harness for dotserve:
// it builds nothing itself (scripts/crashtest.sh compiles dotserve, with
// -race, and passes the binary path), then drives a real server process
// through the crash-safety contract:
//
//  1. determinism — two independent restores of the same snapshot
//     directory answer a forced /v1/readvise bit-identically (only
//     plan_millis, wall-clock, is stripped);
//  2. kill mid-ingest — a dotserve SIGKILLed while acknowledging binary
//     observation batches loses nothing acknowledged more than two
//     snapshot intervals before the kill;
//  3. torn snapshot — a truncated newest generation is rejected and the
//     restore falls back to the previous one;
//  4. fault injection — with -faults forcing every snapshot write to
//     fail the server degrades (readyz 503, uncached advise 503) but
//     stays alive and keeps accepting binary observations.
//
// Run it via scripts/crashtest.sh, or directly:
//
//	go build -race -o /tmp/dotserve ./cmd/dotserve
//	go run ./scripts/crashtest -bin /tmp/dotserve
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"dotprov/internal/online"
	"dotprov/internal/serve"
)

func main() {
	bin := flag.String("bin", "", "path to a dotserve binary (required)")
	flag.Parse()
	if *bin == "" {
		log.Fatal("crashtest: -bin is required")
	}
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	if err := runAll(*bin); err != nil {
		log.Fatalf("crashtest: FAIL: %v", err)
	}
	log.Print("crashtest: PASS (determinism, kill mid-ingest, torn snapshot, fault injection)")
}

func runAll(bin string) error {
	root, err := os.MkdirTemp("", "crashtest-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)
	if err := phaseDeterminism(bin, filepath.Join(root, "a")); err != nil {
		return fmt.Errorf("phase determinism: %w", err)
	}
	dirB := filepath.Join(root, "b")
	if err := phaseKillMidIngest(bin, dirB); err != nil {
		return fmt.Errorf("phase kill mid-ingest: %w", err)
	}
	if err := phaseTornSnapshot(bin, dirB); err != nil {
		return fmt.Errorf("phase torn snapshot: %w", err)
	}
	if err := phaseFaultInjection(bin, filepath.Join(root, "d")); err != nil {
		return fmt.Errorf("phase fault injection: %w", err)
	}
	return nil
}

// ---------------------------------------------------------------- phases

// phaseDeterminism: seed a stream plus drifted windows, shut down cleanly
// (final snapshot), then restore the same generation twice — killing each
// restore with SIGKILL so it cannot write a newer generation — and demand
// bit-identical forced re-advise answers.
func phaseDeterminism(bin, dir string) error {
	s, err := start(bin, "-snapshot-dir", dir, "-snapshot-every", "1h")
	if err != nil {
		return err
	}
	defer s.kill()
	if err := defineStream(s); err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		if _, err := postFrames(s, driftFrame()); err != nil {
			return err
		}
	}
	if err := waitHealth(s, func(h health) bool { return h.Observed >= 3 }, "3 observations folded"); err != nil {
		return err
	}
	if err := s.terminate(); err != nil {
		return err
	}

	var answers [][]byte
	for i := 0; i < 2; i++ {
		r, err := start(bin, "-snapshot-dir", dir, "-snapshot-every", "1h")
		if err != nil {
			return fmt.Errorf("restore %d: %w", i+1, err)
		}
		h, err := getHealth(r)
		if err == nil && h.Restored != 1 {
			err = fmt.Errorf("restored_streams = %d, want 1", h.Restored)
		}
		if err != nil {
			r.kill()
			return fmt.Errorf("restore %d: %w", i+1, err)
		}
		ans, rerr := canonicalReadvise(r)
		r.kill() // no clean shutdown: the next restore must see the same newest generation
		if rerr != nil {
			return fmt.Errorf("restore %d: %w", i+1, rerr)
		}
		answers = append(answers, ans)
	}
	if !bytes.Equal(answers[0], answers[1]) {
		return fmt.Errorf("restores disagree:\n  first:  %s\n  second: %s", answers[0], answers[1])
	}
	var resp serve.ReadviseResponse
	if err := json.Unmarshal(answers[0], &resp); err != nil {
		return err
	}
	if !resp.Drift.Drifted {
		return fmt.Errorf("restored stream lost its drift state: %s", answers[0])
	}
	log.Print("crashtest: determinism ok (re-advise bit-identical across restores, drift preserved)")
	return nil
}

// phaseKillMidIngest: with a 150ms snapshot cadence, stream acknowledged
// binary batches until a SIGKILL, then assert the restart restored every
// observation acknowledged more than two snapshot intervals before the
// kill. The 2x margin covers a fold in flight plus a snapshot in flight.
func phaseKillMidIngest(bin, dir string) error {
	const interval = 150 * time.Millisecond
	s, err := start(bin, "-snapshot-dir", dir, "-snapshot-every", interval.String())
	if err != nil {
		return err
	}
	defer s.kill()
	if err := defineStream(s); err != nil {
		return err
	}
	ackTimes := []time.Time{time.Now()} // the defining observe is observation #1
	deadline := time.Now().Add(8 * interval)
	for time.Now().Before(deadline) {
		status, err := postFrames(s, driftFrame())
		if err != nil {
			return err
		}
		if status == http.StatusAccepted {
			ackTimes = append(ackTimes, time.Now())
		}
		time.Sleep(5 * time.Millisecond)
	}
	killedAt := time.Now()
	s.kill()

	r, err := start(bin, "-snapshot-dir", dir, "-snapshot-every", "1h")
	if err != nil {
		return fmt.Errorf("restart after kill: %w", err)
	}
	defer r.kill()
	h, err := getHealth(r)
	if err != nil {
		return err
	}
	if h.Restored != 1 {
		return fmt.Errorf("restored_streams = %d, want 1", h.Restored)
	}
	cutoff := killedAt.Add(-2 * interval)
	var owed int64
	for _, t := range ackTimes {
		if t.Before(cutoff) {
			owed++
		}
	}
	if h.Observed < owed {
		return fmt.Errorf("restored %d observations but %d were acknowledged >2 snapshot intervals before the kill (of %d total acks)",
			h.Observed, owed, len(ackTimes))
	}
	log.Printf("crashtest: kill mid-ingest ok (%d acks, %d owed by the snapshot contract, %d restored)",
		len(ackTimes), owed, h.Observed)
	return r.terminate() // leaves dir with a fresh newest generation for the torn-snapshot phase
}

// phaseTornSnapshot truncates the newest generation in dir (freshly
// written by the previous phase's clean shutdown) and asserts the restart
// rejects it and restores the previous one.
func phaseTornSnapshot(bin, dir string) error {
	snaps, err := filepath.Glob(filepath.Join(dir, "dotsnap-*.snap"))
	if err != nil {
		return err
	}
	if len(snaps) < 2 {
		return fmt.Errorf("want >= 2 snapshot generations to tear one, have %v", snaps)
	}
	sort.Strings(snaps)
	newest := snaps[len(snaps)-1]
	info, err := os.Stat(newest)
	if err != nil {
		return err
	}
	if err := os.Truncate(newest, info.Size()/2); err != nil {
		return err
	}
	s, err := start(bin, "-snapshot-dir", dir, "-snapshot-every", "1h")
	if err != nil {
		return err
	}
	defer s.kill()
	h, err := getHealth(s)
	if err != nil {
		return err
	}
	if h.Restored != 1 {
		return fmt.Errorf("restored_streams = %d after tearing the newest generation, want 1 (fallback)", h.Restored)
	}
	// The generation counter in healthz is the one the restore loaded;
	// landing on the torn generation's number would mean it was accepted.
	var torn uint64
	fmt.Sscanf(filepath.Base(newest), "dotsnap-%016x.snap", &torn)
	if h.SnapshotGen >= torn {
		return fmt.Errorf("restore reports generation %d, but generation %d was torn — fallback did not happen", h.SnapshotGen, torn)
	}
	log.Printf("crashtest: torn snapshot ok (generation %d rejected, restored %d)", torn, h.SnapshotGen)
	return s.kill()
}

// phaseFaultInjection arms the snapshot fault plan so every write fails,
// and asserts the server degrades rather than dies: healthz stays 200 and
// reports the failures, readyz and fresh advise go 503, and the binary
// observation path keeps accepting.
func phaseFaultInjection(bin, dir string) error {
	s, err := start(bin,
		"-snapshot-dir", dir, "-snapshot-every", "100ms",
		"-faults", "seed=7,write=1")
	if err != nil {
		return err
	}
	defer s.kill()
	if err := defineStream(s); err != nil {
		return err
	}
	if err := waitHealth(s, func(h health) bool { return h.SnapshotFails >= 3 }, "3 consecutive snapshot failures"); err != nil {
		return err
	}
	h, err := getHealth(s)
	if err != nil {
		return err
	}
	if h.Status != "degraded" {
		return fmt.Errorf("healthz status %q with %d snapshot failures, want degraded", h.Status, h.SnapshotFails)
	}
	if status, _ := get(s, "/v1/readyz"); status != http.StatusServiceUnavailable {
		return fmt.Errorf("readyz = %d while degraded, want 503", status)
	}
	status, err := postFrames(s, driftFrame())
	if err != nil {
		return err
	}
	if status != http.StatusAccepted {
		return fmt.Errorf("binary observe = %d while degraded, want 202 (ingest stays open)", status)
	}
	status, _, err = postJSON(s, "/v1/readvise", serve.ReadviseRequest{Stream: "crash", Force: true})
	if err != nil {
		return err
	}
	if status != http.StatusServiceUnavailable {
		return fmt.Errorf("forced readvise = %d while degraded, want 503", status)
	}
	log.Printf("crashtest: fault injection ok (%d snapshot failures, degraded but alive, ingest open)", h.SnapshotFails)
	return s.kill()
}

// ---------------------------------------------------------------- server

// server is one dotserve process under test. done closes after the
// process exits (waitErr then holds the exec.Wait result), so kill and
// terminate are safely re-enterable — every phase defers a kill on top of
// its explicit shutdown.
type server struct {
	cmd     *exec.Cmd
	base    string
	done    chan struct{}
	waitErr error
}

// start launches the binary on a free port and waits for healthz.
func start(bin string, args ...string) (*server, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := l.Addr().String()
	l.Close()
	cmd := exec.Command(bin, append([]string{"-addr", addr}, args...)...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	s := &server{cmd: cmd, base: "http://" + addr, done: make(chan struct{})}
	go func() { s.waitErr = cmd.Wait(); close(s.done) }()
	// A -race build on a loaded CI runner can take a while to come up.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case <-s.done:
			return nil, fmt.Errorf("dotserve exited during startup: %v", s.waitErr)
		default:
		}
		if status, _ := get(s, "/v1/healthz"); status == http.StatusOK {
			return s, nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	s.kill()
	return nil, fmt.Errorf("dotserve did not answer healthz within 30s")
}

// kill SIGKILLs the process — the crash under test. Idempotent.
func (s *server) kill() error {
	s.cmd.Process.Kill()
	<-s.done
	return nil
}

// terminate SIGTERMs the process and waits for the graceful shutdown
// (drain + final snapshot) to complete.
func (s *server) terminate() error {
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case <-s.done:
		if s.waitErr != nil {
			return fmt.Errorf("graceful shutdown: %w", s.waitErr)
		}
		return nil
	case <-time.After(30 * time.Second):
		s.kill()
		return fmt.Errorf("graceful shutdown timed out")
	}
}

// ---------------------------------------------------------------- client

// httpc bounds every exchange: a wedged server must fail a phase, not
// hang the harness.
var httpc = &http.Client{Timeout: 15 * time.Second}

// health mirrors the serve.HealthResponse fields the harness asserts on.
type health struct {
	Status        string `json:"status"`
	Observed      int64  `json:"observed"`
	Restored      int64  `json:"restored_streams"`
	Snapshots     int64  `json:"snapshots"`
	SnapshotFails int64  `json:"snapshot_failures"`
	SnapshotGen   uint64 `json:"snapshot_generation"`
}

func get(s *server, path string) (int, []byte) {
	resp, err := httpc.Get(s.base + path)
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

func getHealth(s *server) (health, error) {
	var h health
	status, body := get(s, "/v1/healthz")
	if status != http.StatusOK {
		return h, fmt.Errorf("healthz = %d", status)
	}
	return h, json.Unmarshal(body, &h)
}

// waitHealth polls healthz until cond holds or five seconds pass.
func waitHealth(s *server, cond func(health) bool, what string) error {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if h, err := getHealth(s); err == nil && cond(h) {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("timed out waiting for %s", what)
}

func postJSON(s *server, path string, req any) (int, []byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	resp, err := httpc.Post(s.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b, nil
}

// postFrames ships one binary observation batch to the crash stream.
// Transport errors are errors; HTTP refusals (429, 503) are statuses the
// phases decide about.
func postFrames(s *server, frames ...online.Frame) (int, error) {
	req, err := http.NewRequest(http.MethodPost, s.base+"/v1/observe?stream=crash",
		bytes.NewReader(online.EncodeFrames(frames)))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", online.ContentTypeFrames)
	resp, err := httpc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// defineStream creates the "crash" stream with an OLTP-shaped workload
// whose later windows (driftFrame) shift to sequential scans — the same
// shape the serve test suite drifts.
func defineStream(s *server) error {
	status, body, err := postJSON(s, "/v1/observe", serve.ObserveRequest{
		Stream:   "crash",
		Workload: oltpSpec(0),
		Box:      "box1",
		SLA:      0.25,
	})
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("defining observe = %d: %s", status, bytes.TrimSpace(body))
	}
	return nil
}

// oltpSpec is the stream workload: random-read dominated at seqShare 0,
// scan dominated at seqShare 1.
func oltpSpec(seqShare float64) serve.WorkloadSpec {
	rand := (1 - seqShare) * 2e5
	seq := seqShare * 2e6
	return serve.WorkloadSpec{
		Objects: []serve.ObjectSpec{
			{Name: "orders", SizeBytes: 10e9},
			{Name: "orders_pkey", Kind: "index", Table: "orders", SizeBytes: 1e9},
			{Name: "wal", Kind: "log", SizeBytes: 1e9},
		},
		IO: []serve.IOSpec{
			{Object: "orders", SeqRead: seq, RandRead: rand},
			{Object: "orders_pkey", RandRead: rand},
			{Object: "wal", SeqWrite: 1e4},
		},
		CPUMillis:     100,
		Concurrency:   1,
		Txns:          50000,
		ElapsedMillis: 3.6e6,
	}
}

// driftFrame is one drifted window (seqShare 0.8) in wire form, indexed
// against oltpSpec's object order: 0 orders, 1 orders_pkey, 2 wal.
func driftFrame() online.Frame {
	spec := oltpSpec(0.8)
	f := online.Frame{
		CPU:     time.Duration(spec.CPUMillis) * time.Millisecond,
		Elapsed: time.Duration(spec.ElapsedMillis) * time.Millisecond,
		Txns:    spec.Txns,
	}
	for i, io := range spec.IO {
		var o online.FrameObject
		o.Index = uint32(i)
		o.IO[0], o.IO[1], o.IO[2], o.IO[3] = io.SeqRead, io.RandRead, io.SeqWrite, io.RandWrite
		f.Objects = append(f.Objects, o)
	}
	return f
}

// canonicalReadvise forces a re-advise and strips the only wall-clock
// field (plan_millis) so two runs over identical state compare equal.
func canonicalReadvise(s *server) ([]byte, error) {
	status, body, err := postJSON(s, "/v1/readvise", serve.ReadviseRequest{Stream: "crash", Force: true})
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("forced readvise = %d: %s", status, bytes.TrimSpace(body))
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, err
	}
	delete(m, "plan_millis")
	return json.Marshal(m) // map keys marshal sorted: a canonical byte form
}
