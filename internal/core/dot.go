package core

import (
	"fmt"
	"sync"
	"time"

	"dotprov/internal/catalog"
	"dotprov/internal/device"
	"dotprov/internal/search"
	"dotprov/internal/workload"
)

// Input bundles what the layout algorithms need: the database metadata and
// sizes, the box of storage devices, the TOC/performance estimator
// (extended optimizer for DSS, profile-based for OLTP), and the workload
// profiles for move scoring.
type Input struct {
	Cat         *catalog.Catalog
	Box         *device.Box
	Est         workload.Estimator
	Profiles    *ProfileSet
	Concurrency int
	// Workers bounds the search engine's evaluation fan-out. Values below 2
	// keep every evaluation on the calling goroutine; higher values require
	// Est to be safe for concurrent use (see workload.Estimator). Results
	// are identical either way.
	Workers int
	// Budget optionally shares one evaluation worker budget across several
	// inputs' engines (overriding Workers when set). Provisioning sweeps use
	// it to bound total estimator concurrency while many candidate searches
	// run at once. Results are identical with or without it.
	Budget *search.Budget
	// LayoutCost optionally overrides the layout cost model C(L) in
	// cent/hour (default: the linear model of §2.1). The discrete-sized
	// model of §5.2 plugs in here.
	LayoutCost func(l catalog.Layout) (float64, error)
	// LayoutCostCompact optionally mirrors LayoutCost for compact layouts
	// (provision.DiscreteCostModels builds the pair). It must price exactly
	// like LayoutCost; setting LayoutCost without it disables the compiled
	// fast path rather than risk divergent pricing.
	LayoutCostCompact func(cl catalog.CompactLayout) (float64, error)
	// LowerBound optionally supplies an admissible TOC lower bound for
	// partial assignments, letting Exhaustive/ExhaustivePartial prune whole
	// subtrees whose floor already exceeds the incumbent (see
	// Input.StorageFloorBound for the profile-separable construction). An
	// admissible bound never changes the result, only the number of
	// candidates evaluated. The hook is ignored for throughput (OLTP)
	// workloads, whose C(L)/T objective elapsed-time floors cannot bound.
	LowerBound search.LowerBound
	// CompactBound mirrors LowerBound on the compiled path, fed by the
	// DFS's running storage-cost accumulator (Input.StorageFloorBoundCompact
	// builds one). When LowerBound is set without it, exhaustive search
	// stays on the map enumeration so pruning is preserved.
	CompactBound search.CompactBound
	// NoCompile disables the compiled (compact/delta) evaluation fast path,
	// forcing map-based evaluation everywhere. Results are bit-identical
	// either way; the switch exists for benchmarks and equivalence tests.
	NoCompile bool
	// LayoutCostClassSymmetric declares that a custom LayoutCost /
	// LayoutCostCompact pair depends only on the per-class byte totals of
	// the layout (as the linear and discrete-sized models both do), not on
	// which objects produce them. The declaration lets exhaustive search
	// keep dominance pruning — collapsing symmetric units — under the
	// custom model; cost bounding stays off regardless, since the floor
	// assumes linear pricing. Ignored when no custom cost is installed.
	LayoutCostClassSymmetric bool
	// Search tunes the exhaustive branch-and-bound enumeration. The zero
	// value is the default behaviour; no knob changes any result, only the
	// work done to reach it.
	Search SearchTuning
	// Replication configures the replicated (class-set) search entry points
	// — OptimizeReplicated, ExhaustiveReplicated and their partitioned and
	// incremental variants. The zero value leaves the single-class entry
	// points untouched and lets the replicated ones use any replica count.
	Replication ReplicationConfig
}

// SearchTuning is Input.Search: ablation and tuning knobs for the
// branch-and-bound exhaustive enumeration. It is a value type on purpose —
// derived inputs (Input.Partitioned) copy it through.
type SearchTuning struct {
	// DisableBnB falls back to the legacy enumeration (compiled DFS with the
	// accumulator bound, or the map walk), as before the branch-and-bound
	// engine. Results are bit-identical either way.
	DisableBnB bool
	// NoReorder keeps the odometer unit order instead of the descending
	// cost-spread order.
	NoReorder bool
	// NoDominance disables symmetric-unit collapsing.
	NoDominance bool
	// SplitDepth fixes the parallel frontier depth (0 = automatic).
	SplitDepth int
}

// Options controls one optimization run.
type Options struct {
	// RelativeSLA is the performance constraint relative to the starting
	// layout L0 (paper §2.4): 0.5 allows 2x degradation.
	RelativeSLA float64
	// Baseline optionally overrides the estimated L0 metrics when deriving
	// constraints (e.g. to use measured baseline numbers).
	Baseline *workload.Metrics
	// Passes bounds the number of sweeps over the move list (default 2).
	// Procedure 1 in the paper is a single sweep; a second sweep lets a
	// group's placement be revisited after the rest of the layout has
	// settled, which closes most of the gap to exhaustive search (see the
	// ablation benchmark). Sweeps stop early at a fixed point.
	Passes int
	// GreedyApply disables the TOC-improvement guard, reproducing the
	// paper's literal Procedure 1 where every feasible move is applied to
	// L even when it worsens the running layout (L* still tracks the best
	// prefix). Kept for the ablation benchmark.
	GreedyApply bool
}

// validateSLA checks the relative SLA bounds shared by every search entry
// point.
func (o Options) validateSLA() error {
	if o.RelativeSLA <= 0 || o.RelativeSLA > 1 {
		return fmt.Errorf("core: relative SLA must be in (0, 1], got %g", o.RelativeSLA)
	}
	return nil
}

// Result reports the recommended layout and its estimated economics.
type Result struct {
	Layout      catalog.Layout
	Feasible    bool
	TOCCents    float64 // estimated TOC (cents/workload for DSS, cents/task for OLTP)
	Metrics     workload.Metrics
	Constraints workload.Constraints
	Evaluated   int // layouts investigated (memoized revisits included)
	// EstimatorCalls counts the estimator invocations this run actually
	// made: the candidate evaluations that missed the shared engine's memo,
	// plus the baseline (and, for an infeasible ExhaustivePartial, the
	// fallback) evaluations — which is why it can slightly exceed the
	// memo-miss share of Evaluated.
	EstimatorCalls int
	PlanTime       time.Duration // wall-clock optimization time
	// Search reports the enumeration's statistics — candidates evaluated,
	// subtrees cut by the bound, dominance groups, space sizes. Exhaustive
	// entry points fill every field; the DOT sweeps fill Candidates only.
	Search search.EnumStats
	// best holds the incumbent evaluation; the Layout field is materialized
	// from it once at the end of the run (materializing a map per
	// improvement is pure allocation on the compiled path).
	best     search.Eval
	haveBest bool
}

// consider adopts the evaluation when it is feasible and improves on the
// result's incumbent TOC. It reports feasibility.
func (r *Result) consider(ev search.Eval, cons workload.Constraints) bool {
	if !ev.Feasible(cons) {
		return false
	}
	if !r.Feasible || ev.TOCCents < r.TOCCents {
		r.Feasible = true
		r.best = ev
		r.haveBest = true
		r.TOCCents = ev.TOCCents
		r.Metrics = ev.Metrics
	}
	return true
}

func (in Input) validate() error {
	if in.Cat == nil || in.Box == nil || in.Est == nil {
		return fmt.Errorf("core: Input requires Cat, Box and Est")
	}
	if len(in.Box.Devices) == 0 {
		return fmt.Errorf("core: box %q has no devices", in.Box.Name)
	}
	return nil
}

func (in Input) conc() int {
	if in.Concurrency < 1 {
		return 1
	}
	return in.Concurrency
}

// toc computes the workload cost under the input's layout cost model.
func (in Input) toc(m workload.Metrics, l catalog.Layout) (float64, error) {
	if in.LayoutCost == nil {
		return workload.TOCCents(m, l, in.Cat, in.Box)
	}
	perHour, err := in.LayoutCost(l)
	if err != nil {
		return 0, err
	}
	if m.Throughput > 0 {
		return perHour / m.Throughput, nil
	}
	return perHour * m.Elapsed.Hours(), nil
}

// engine builds the shared candidate-evaluation engine for this input: the
// single estimate → price → check pipeline every search entry point runs
// through, memoized by the canonical layout key and fanned out over
// in.Workers. When the estimator is compact-capable the engine also gets
// the compiled evaluation path (see compiledConfig); results are
// bit-identical on either path.
func (in Input) engine() (*search.Engine, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	return search.New(search.Config{
		Est:        in.Est,
		Cost:       in.toc,
		CapacityOK: func(l catalog.Layout) bool { return l.CheckCapacity(in.Cat, in.Box) == nil },
		Workers:    in.Workers,
		Budget:     in.Budget,
		Compiled:   in.compiledConfig(),
	})
}

// compiledConfig assembles the engine's compiled path when the input
// supports it: the estimator must be compact-capable (the profile-driven
// estimators compile themselves via workload.CompileEstimator; plan-aware
// estimators do not, and transparently stay on the map path), and a custom
// LayoutCost needs its compact mirror. Returns nil when the compiled path
// cannot engage.
func (in Input) compiledConfig() *search.CompiledConfig {
	if in.NoCompile {
		return nil
	}
	if in.LayoutCost != nil && in.LayoutCostCompact == nil {
		return nil
	}
	est := workload.CompileEstimator(in.Est, in.Cat)
	ce, ok := est.(workload.CompactEstimator)
	if !ok {
		return nil
	}
	de, _ := est.(workload.DeltaEstimator)
	// Sizes are frozen per engine, like the estimators' statistics; the
	// dense snapshot keeps cost and capacity checks off the catalog's maps.
	sizes := in.Cat.DenseSizeBytes()
	perHour := func(cl catalog.CompactLayout) (float64, error) {
		if in.LayoutCostCompact != nil {
			return in.LayoutCostCompact(cl)
		}
		return cl.CostCentsPerHourDense(sizes, in.Box)
	}
	return &search.CompiledConfig{
		Cat:   in.Cat,
		Est:   ce,
		Delta: de,
		Cost: func(m workload.Metrics, cl catalog.CompactLayout) (float64, error) {
			ph, err := perHour(cl)
			if err != nil {
				return 0, err
			}
			if m.Throughput > 0 {
				return ph / m.Throughput, nil
			}
			return ph * m.Elapsed.Hours(), nil
		},
		CapacityOK: func(cl catalog.CompactLayout) bool {
			return cl.FitsCapacityDense(sizes, in.Box)
		},
	}
}

// prep evaluates the starting layout L0 (every object on the most expensive
// class) and derives the constraint set, shared by DOT and exhaustive
// search.
func (in Input) prep(opts Options, eng *search.Engine) (device.Class, search.Eval, workload.Constraints, error) {
	// Input validation already ran when the engine was built (in.engine()
	// is the single gate every entry point passes through).
	var zero search.Eval
	if err := opts.validateSLA(); err != nil {
		return 0, zero, workload.Constraints{}, err
	}
	l0Class := in.Box.MostExpensive().Class
	ev0, err := in.evaluateUniform(eng, l0Class)
	if err != nil {
		return 0, zero, workload.Constraints{}, fmt.Errorf("core: estimating baseline: %w", err)
	}
	baseline := ev0.Metrics
	if opts.Baseline != nil {
		baseline = *opts.Baseline
	}
	cons := workload.Constraints{Relative: opts.RelativeSLA, Baseline: baseline}
	return l0Class, ev0, cons, nil
}

// evaluateUniform evaluates the "all objects on cls" layout through the
// engine, staying compact on the compiled path.
func (in Input) evaluateUniform(eng *search.Engine, cls device.Class) (search.Eval, error) {
	if eng.Compiled() {
		return eng.EvaluateCompact(catalog.CompactUniform(in.Cat, cls))
	}
	return eng.Evaluate(catalog.NewUniformLayout(in.Cat, cls))
}

// enumerateMoves scores the move list for this input. The list depends
// only on the input (never on Options or the SLA), so callers that run
// several sweeps against one engine — OptimizeBest, the relaxing loop —
// compute it once and pass it to every optimizeWith call.
func (in Input) enumerateMoves(eng *search.Engine) ([]Move, error) {
	if in.Profiles == nil {
		return nil, fmt.Errorf("core: Optimize requires workload profiles (run the profiling phase)")
	}
	return EnumerateMoves(in.Cat, in.Box, in.Profiles, in.Box.MostExpensive().Class, in.conc(), eng.Workers())
}

// Optimize is Procedure 1, the DOT heuristic: start from L0 (every object
// on the most expensive class), apply the scored moves in order, keep every
// feasible layout, and return the one with the minimum estimated TOC.
func Optimize(in Input, opts Options) (*Result, error) {
	eng, err := in.engine()
	if err != nil {
		return nil, err
	}
	// Fail on a bad SLA before scoring the move list.
	if err := opts.validateSLA(); err != nil {
		return nil, err
	}
	moves, err := in.enumerateMoves(eng)
	if err != nil {
		return nil, err
	}
	return optimizeWith(in, opts, eng, moves)
}

// optimizeWith is Optimize against a caller-supplied engine and move list,
// so OptimizeBest's two sweeps and OptimizeRelaxing's SLA halvings share
// one memo table and one scored move list instead of recomputing both.
func optimizeWith(in Input, opts Options, eng *search.Engine, moves []Move) (*Result, error) {
	start := time.Now()
	stats0 := eng.Stats()
	l0Class, ev0, cons, err := in.prep(opts, eng)
	if err != nil {
		return nil, err
	}

	res := &Result{Constraints: cons, Evaluated: 1}
	// L0 is the first candidate (it may violate capacity).
	res.consider(ev0, cons)

	// Seed the candidates with the uniform ("All <class>") layouts. They
	// cost M extra evaluations and anchor the search under cost models with
	// consolidation discounts (the discrete-sized model of §5.2 prices any
	// second storage class at a whole device). On the map path the seeds
	// fan out across the engine's workers; on the compiled path they are a
	// handful of flat-table estimates, evaluated inline.
	if eng.Compiled() {
		for _, d := range in.Box.SortedByPrice() {
			if d.Class == l0Class {
				continue
			}
			ev, err := eng.EvaluateCompact(catalog.CompactUniform(in.Cat, d.Class))
			if err != nil {
				return nil, err
			}
			res.Evaluated++
			res.consider(ev, cons)
		}
	} else {
		var seeds []catalog.Layout
		for _, d := range in.Box.SortedByPrice() {
			if d.Class == l0Class {
				continue
			}
			seeds = append(seeds, catalog.NewUniformLayout(in.Cat, d.Class))
		}
		seedEvs, err := eng.EvaluateAll(seeds)
		if err != nil {
			return nil, err
		}
		for _, ev := range seedEvs {
			res.Evaluated++
			res.consider(ev, cons)
		}
	}

	passes := opts.Passes
	if passes < 1 {
		passes = 2
	}
	if eng.Compiled() && !ev0.Compact.IsZero() {
		err = dotSweepCompact(opts, eng, moves, ev0, cons, res, passes, nil)
	} else {
		err = dotSweepMap(opts, eng, moves, ev0, cons, res, passes, nil)
	}
	if err != nil {
		return nil, err
	}
	if !res.Feasible {
		// No feasible layout found: report L0's numbers so the caller can
		// decide how to relax the constraints (paper §3: "the performance
		// constraints must be relaxed in order to compute a layout").
		res.best = ev0
		res.haveBest = true
		res.TOCCents = ev0.TOCCents
		res.Metrics = ev0.Metrics
	}
	// The engine's memo retains every evaluated layout; hand the caller a
	// private copy so post-hoc mutation cannot reach shared state.
	res.Layout = res.best.LayoutClone()
	res.EstimatorCalls = eng.Stats().Sub(stats0).EstimatorCalls
	res.PlanTime = time.Since(start)
	res.Search.Candidates = res.Evaluated
	return res, nil
}

// dotSweepMap is Procedure 1's move sweep on the map path: every candidate
// is a cloned map layout run through Engine.Evaluate. A non-nil gate vets
// candidates before they can be adopted or walked to (OptimizeIncremental's
// migration budget plugs in here); the plain sweeps pass nil.
func dotSweepMap(opts Options, eng *search.Engine, moves []Move, ev0 search.Eval, cons workload.Constraints, res *Result, passes int, gate func(search.Eval, workload.Constraints) bool) error {
	l := ev0.LayoutMap()
	curTOC := ev0.TOCCents
	curFeasible := ev0.Feasible(cons)
	for pass := 0; pass < passes; pass++ {
		changed := false
		for _, m := range moves {
			lnew := m.Apply(l)
			if lnew.Equal(l) {
				continue
			}
			ev, err := eng.Evaluate(lnew)
			if err != nil {
				return err
			}
			res.Evaluated++
			if gate != nil && !gate(ev, cons) {
				continue
			}
			if !res.consider(ev, cons) {
				continue
			}
			// Guard: only walk to layouts that do not worsen the running
			// TOC (unless reproducing the literal Procedure 1). Infeasible
			// starting points (L0 over capacity) always accept the first
			// feasible layout.
			if !opts.GreedyApply && curFeasible && ev.TOCCents > curTOC {
				continue
			}
			l = lnew
			curTOC = ev.TOCCents
			curFeasible = true
			changed = true
		}
		if !changed {
			break
		}
	}
	return nil
}

// dotSweepCompact is the compiled move sweep: the running layout is one
// scratch compact layout mutated in place, each candidate move is scored by
// delta re-estimation from the current evaluation (Engine.EvaluateDelta),
// and rejected moves are reverted exactly. Candidate order, skip rules and
// accept rules mirror dotSweepMap move for move (including the optional
// admission gate), so the walk — and the result — is identical.
func dotSweepCompact(opts Options, eng *search.Engine, moves []Move, ev0 search.Eval, cons workload.Constraints, res *Result, passes int, gate func(search.Eval, workload.Constraints) bool) error {
	cur := ev0
	curTOC := ev0.TOCCents
	curFeasible := ev0.Feasible(cons)
	scratch := ev0.Compact.Clone()
	var changes []workload.ObjectMove
	for pass := 0; pass < passes; pass++ {
		changed := false
		for _, m := range moves {
			changes = changes[:0]
			deltaable := true
			for i, obj := range m.Group.Objects {
				from, placed := scratch.Class(obj)
				if !placed {
					// DOT starts from the total layout L0, so this is
					// unreachable; degrade to full evaluation rather than
					// delta from an unknown class.
					deltaable = false
				}
				if !placed || from != m.Placement[i] {
					changes = append(changes, workload.ObjectMove{Obj: obj, From: from, To: m.Placement[i]})
				}
			}
			if len(changes) == 0 {
				continue // identity move, as on the map path
			}
			// SetRaw, not Set: the replicated sweep drives this same loop with
			// class-set masks in the class slots, which Set would reject.
			for _, ch := range changes {
				scratch.SetRaw(ch.Obj, byte(ch.To))
			}
			var ev search.Eval
			var err error
			if deltaable {
				ev, err = eng.EvaluateDelta(cur, scratch, changes)
			} else {
				ev, err = eng.EvaluateCompact(scratch)
			}
			if err != nil {
				return err
			}
			res.Evaluated++
			accepted := (gate == nil || gate(ev, cons)) && res.consider(ev, cons)
			if !accepted || (!opts.GreedyApply && curFeasible && ev.TOCCents > curTOC) {
				if deltaable {
					for _, ch := range changes {
						scratch.SetRaw(ch.Obj, byte(ch.From))
					}
				} else {
					scratch = cur.Compact.Clone()
				}
				continue
			}
			cur = ev
			curTOC = ev.TOCCents
			curFeasible = true
			changed = true
		}
		if !changed {
			break
		}
	}
	return nil
}

// OptimizeBest runs both application policies — the guarded sweep and the
// paper's literal greedy sweep — and returns the feasible result with the
// lower estimated TOC. The two are complementary: the guard wins when the
// greedy walk would clobber good placements; the greedy walk wins when the
// cost model has valleys a monotonic walk cannot cross (e.g. the
// discrete-sized model of §5.2, where using a second storage class
// temporarily raises cost until the first one empties).
//
// Both sweeps share one search engine, so the second revisits the first's
// memoized evaluations instead of re-estimating them; with Workers > 1 the
// sweeps also run concurrently (the engine's semaphore still bounds
// concurrent estimator calls at Workers). Evaluated and PlanTime report
// the summed
// work of both sweeps; EstimatorCalls reports the distinct layouts actually
// estimated.
func OptimizeBest(in Input, opts Options) (*Result, error) {
	eng, err := in.engine()
	if err != nil {
		return nil, err
	}
	if err := opts.validateSLA(); err != nil {
		return nil, err
	}
	moves, err := in.enumerateMoves(eng)
	if err != nil {
		return nil, err
	}
	guarded, greedy := opts, opts
	guarded.GreedyApply = false
	greedy.GreedyApply = true
	var (
		a, b       *Result
		errA, errB error
	)
	if eng.Workers() > 1 {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, errB = optimizeWith(in, greedy, eng, moves)
		}()
		a, errA = optimizeWith(in, guarded, eng, moves)
		wg.Wait()
	} else {
		a, errA = optimizeWith(in, guarded, eng, moves)
		if errA == nil {
			b, errB = optimizeWith(in, greedy, eng, moves)
		}
	}
	if errA != nil {
		return nil, errA
	}
	if errB != nil {
		return nil, errB
	}
	best := a
	if b.Feasible && (!a.Feasible || b.TOCCents < a.TOCCents) {
		best = b
	}
	best.Evaluated = a.Evaluated + b.Evaluated
	best.PlanTime = a.PlanTime + b.PlanTime
	best.EstimatorCalls = eng.Stats().EstimatorCalls
	best.Search.Candidates = best.Evaluated
	return best, nil
}

// minSLAFloor guards the relaxing loops against a non-positive minSLA,
// which could otherwise halve forever without ever clamping.
const minSLAFloor = 1e-9

// relaxing is the shared SLA-halving loop of §4.5.3: run the search,
// halve the relative SLA while infeasible, clamp at minSLA, and stop at the
// first feasible result (or at the clamp).
func relaxing(opts Options, minSLA float64, run func(Options) (*Result, error)) (*Result, float64, error) {
	if minSLA < minSLAFloor {
		minSLA = minSLAFloor
	}
	sla := opts.RelativeSLA
	for {
		o := opts
		o.RelativeSLA = sla
		res, err := run(o)
		if err != nil {
			return nil, 0, err
		}
		if res.Feasible || sla <= minSLA {
			return res, sla, nil
		}
		sla /= 2
		if sla < minSLA {
			sla = minSLA
		}
	}
}

// OptimizeRelaxing runs Optimize, halving the relative SLA until a feasible
// layout appears (the paper's loop in §4.5.3: "we slightly relax the
// relative SLA and repeat the optimization"). It returns the result and the
// final SLA value. All rounds share one search engine: a layout estimated
// at one SLA level is only re-checked, never re-estimated, at the next.
func OptimizeRelaxing(in Input, opts Options, minSLA float64) (*Result, float64, error) {
	eng, err := in.engine()
	if err != nil {
		return nil, 0, err
	}
	if err := opts.validateSLA(); err != nil {
		return nil, 0, err
	}
	moves, err := in.enumerateMoves(eng)
	if err != nil {
		return nil, 0, err
	}
	return relaxing(opts, minSLA, func(o Options) (*Result, error) {
		return optimizeWith(in, o, eng, moves)
	})
}
