package online

import (
	"math"
	"testing"
	"time"

	"dotprov/internal/catalog"
	"dotprov/internal/device"
	"dotprov/internal/iosim"
	"dotprov/internal/types"
)

// testCatalog builds a small synthetic database on Box 1: a large
// scan-prone fact table with an index, a small hot dimension table, and a
// WAL. Sized so the optimizer has real placement trade-offs.
func testCatalog(t *testing.T) (*catalog.Catalog, map[string]catalog.ObjectID) {
	t.Helper()
	cat := catalog.New()
	sch := types.NewSchema(types.Column{Name: "id", Kind: types.KindInt})
	ids := make(map[string]catalog.ObjectID)
	fact, err := cat.CreateTable("fact", sch, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := cat.CreateIndex("fact_pkey", fact.ID, []string{"id"}, true)
	if err != nil {
		t.Fatal(err)
	}
	dim, err := cat.CreateTable("dim", sch, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	dimIx, err := cat.CreateIndex("dim_pkey", dim.ID, []string{"id"}, true)
	if err != nil {
		t.Fatal(err)
	}
	wal, err := cat.CreateAux("wal", catalog.KindLog, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	cat.SetSize(fact.ID, 20e9)
	cat.SetSize(ix.ID, 2e9)
	cat.SetSize(dim.ID, 1e9)
	cat.SetSize(dimIx.ID, 0.1e9)
	ids["fact"], ids["fact_pkey"], ids["dim"], ids["dim_pkey"], ids["wal"] =
		fact.ID, ix.ID, dim.ID, dimIx.ID, wal.ID
	return cat, ids
}

// oltpWindow is a transactional mix: random reads through the dim index,
// random writes to fact, sequential WAL writes.
func oltpWindow(ids map[string]catalog.ObjectID) Window {
	p := iosim.NewProfile()
	p.Add(ids["dim"], device.RandRead, 50000)
	p.Add(ids["dim_pkey"], device.RandRead, 50000)
	p.Add(ids["fact"], device.RandWrite, 20000)
	p.Add(ids["fact_pkey"], device.RandWrite, 20000)
	p.Add(ids["wal"], device.SeqWrite, 70000)
	// An hour-long window: re-advising paces itself at the cadence of
	// real drift, and the SLA headroom of an hour can absorb real
	// migrations (the gate prices moves against it).
	return Window{Profile: p, CPU: 50 * time.Millisecond, Elapsed: time.Hour, Txns: 500000}
}

// dssWindow is the drifted mix: the fact table is now scanned
// sequentially, the transactional side has faded.
func dssWindow(ids map[string]catalog.ObjectID) Window {
	p := iosim.NewProfile()
	p.Add(ids["fact"], device.SeqRead, 2e6)
	p.Add(ids["fact_pkey"], device.RandRead, 2000)
	p.Add(ids["dim"], device.RandRead, 5000)
	p.Add(ids["dim_pkey"], device.RandRead, 5000)
	p.Add(ids["wal"], device.SeqWrite, 1000)
	// An hour-long window: re-advising paces itself at the cadence of
	// real drift, and the SLA headroom of an hour can absorb real
	// migrations (the gate prices moves against it).
	return Window{Profile: p, CPU: 50 * time.Millisecond, Elapsed: time.Hour, Txns: 500000}
}

func TestCollectorWindows(t *testing.T) {
	c := NewCollector(3)
	ids := map[string]catalog.ObjectID{"x": 1}
	c.ChargeIO(ids["x"], device.SeqRead, 5)
	c.ChargeIO(ids["x"], device.SeqRead, 3)
	c.ChargeIO(ids["x"], device.RandWrite, 2)
	c.ChargeIO(ids["x"], device.RandWrite, -1) // ignored
	c.AddCPU(10 * time.Millisecond)
	c.AddTxns(7)
	w := c.Roll(time.Second)
	if got := w.Profile.Get(1)[device.SeqRead]; got != 8 {
		t.Fatalf("seq reads = %g, want 8", got)
	}
	if w.CPU != 10*time.Millisecond || w.Txns != 7 || w.Elapsed != time.Second {
		t.Fatalf("window meta wrong: %+v", w)
	}
	if w.IOs() != 10 {
		t.Fatalf("IOs = %g, want 10", w.IOs())
	}
	// Ring capacity: 5 rolls through capacity 3 retain the last 3.
	for i := 0; i < 4; i++ {
		c.ChargeIO(1, device.SeqRead, int64(i+1))
		c.Roll(time.Second)
	}
	if c.Closed() != 3 {
		t.Fatalf("closed = %d, want 3 (ring capacity)", c.Closed())
	}
	if c.Total() != 5 {
		t.Fatalf("total = %d, want 5", c.Total())
	}
	agg, n := c.Aggregate(2)
	if n != 2 {
		t.Fatalf("aggregated %d windows, want 2", n)
	}
	// Last two rolls charged 3 and 4 sequential reads.
	if got := agg.Profile.Get(1)[device.SeqRead]; got != 7 {
		t.Fatalf("aggregate seq reads = %g, want 7", got)
	}
	// Aggregating more than retained clamps.
	if _, n := c.Aggregate(100); n != 3 {
		t.Fatalf("aggregate clamp: %d, want 3", n)
	}
}

func TestDetectorNoDriftOnIdenticalAndScaled(t *testing.T) {
	cat, ids := testCatalog(t)
	box := device.Box1()
	layout := catalog.NewUniformLayout(cat, device.HSSD)
	det := Detector{Box: box, Concurrency: 1}

	w := oltpWindow(ids)
	dr, err := det.Compare(w, w.Clone(), layout)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Drifted || dr.Divergence != 0 {
		t.Fatalf("identical windows drifted: %+v", dr)
	}
	if dr.RefFingerprint != dr.ObsFingerprint {
		t.Fatal("identical windows must fingerprint equal")
	}

	// Double the counts over double the elapsed time: the rate is the
	// same, so rate normalization must see (almost) no drift.
	scaled := w.Clone()
	scaled.Profile.Scale(2)
	scaled.Elapsed = 2 * w.Elapsed
	scaled.Txns = 2 * w.Txns
	dr, err = det.Compare(w, scaled, layout)
	if err != nil {
		t.Fatal(err)
	}
	if dr.RefFingerprint == dr.ObsFingerprint {
		t.Fatal("scaled window should fingerprint differently")
	}
	if dr.Drifted || dr.Divergence > 1e-9 {
		t.Fatalf("rate-identical window drifted: divergence %g", dr.Divergence)
	}
}

func TestDetectorFiresOnMixShift(t *testing.T) {
	cat, ids := testCatalog(t)
	box := device.Box1()
	layout := catalog.NewUniformLayout(cat, device.HSSD)
	det := Detector{Box: box, Concurrency: 1}
	dr, err := det.Compare(oltpWindow(ids), dssWindow(ids), layout)
	if err != nil {
		t.Fatal(err)
	}
	if !dr.Drifted {
		t.Fatalf("mix shift not detected: divergence %g", dr.Divergence)
	}
	if math.IsInf(dr.Divergence, 1) || dr.Divergence <= DefaultDriftThreshold {
		t.Fatalf("implausible divergence %g", dr.Divergence)
	}
}

func TestDetectorAbstainsOnThinWindows(t *testing.T) {
	cat, ids := testCatalog(t)
	box := device.Box1()
	layout := catalog.NewUniformLayout(cat, device.HSSD)
	det := Detector{Box: box, MinIOs: 100}
	thin := Window{Profile: iosim.NewProfile(), Elapsed: time.Second}
	thin.Profile.Add(ids["dim"], device.RandRead, 5)
	dr, err := det.Compare(oltpWindow(ids), thin, layout)
	if err != nil {
		t.Fatal(err)
	}
	if !dr.Thin || dr.Drifted {
		t.Fatalf("thin window should abstain: %+v", dr)
	}
}

func TestMigrationPlanAndGate(t *testing.T) {
	cat, ids := testCatalog(t)
	box := device.Box1()
	m := MigrationModel{Cat: cat, Box: box}
	from := catalog.NewUniformLayout(cat, device.HSSD)
	to := from.Clone()
	to[ids["fact"]] = device.HDDRAID0

	p := m.Plan(from, to)
	if len(p.Moves) != 1 || p.Bytes != 20e9 {
		t.Fatalf("plan = %+v, want 1 move of 20 GB", p)
	}
	if p.Time <= 0 {
		t.Fatal("migration of 20 GB must cost time")
	}
	// Moving everything costs strictly more.
	all := catalog.NewUniformLayout(cat, device.HDDRAID0)
	pAll := m.Plan(from, all)
	if pAll.Time <= p.Time || pAll.Bytes <= p.Bytes {
		t.Fatalf("full migration (%v) should dominate one object (%v)", pAll, p)
	}
	if m.Plan(from, from).Time != 0 {
		t.Fatal("identity migration must be free")
	}
}
