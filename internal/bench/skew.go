package bench

import (
	"fmt"
	"io"

	"dotprov/internal/catalog"
	"dotprov/internal/core"
	"dotprov/internal/device"
	"dotprov/internal/workload"
)

// SkewSLA is the relative SLA the skew experiment holds both granularities
// to. At 0.2 a whole hot-headed table cannot leave H-SSD (a uniform move
// to any cheaper class blows the constraint) while a heat-based split
// keeps the hot head fast and ships the cold tail cheap.
const SkewSLA = 0.2

// SkewOutcome is one granularity's result on the skew fixture.
type SkewOutcome struct {
	Feasible     bool
	TOCCents     float64
	StorageCents float64 // layout storage cost, cents/hour
	Evaluated    int
	Units        int // placement units searched
	SplitObjects int // objects whose units landed on more than one class
}

// SkewComparison is the experiment's structured output for one box:
// object-granular vs partition-granular DOT on the same fixture, box and
// SLA.
type SkewComparison struct {
	Box         string
	Object      SkewOutcome
	Partitioned SkewOutcome
}

// SkewFixtureInput builds the Zipf hot/cold fixture's object-granular
// input on a box (the shared entry point for the experiment, the
// acceptance tests and the repository benchmarks).
func SkewFixtureInput(box *device.Box) (core.Input, *workload.SkewedFixture, error) {
	fx, err := workload.Skewed(workload.SkewedConfig{})
	if err != nil {
		return core.Input{}, nil, err
	}
	ps := core.NewProfileSet()
	ps.SetSingle(fx.Profile)
	return core.Input{
		Cat:         fx.Cat,
		Box:         box,
		Est:         fx.Estimator(box, 1),
		Profiles:    ps,
		Concurrency: 1,
	}, fx, nil
}

// CompareSkew runs both granularities on one box at SkewSLA.
func CompareSkew(box *device.Box) (SkewComparison, error) {
	in, fx, err := SkewFixtureInput(box)
	if err != nil {
		return SkewComparison{}, err
	}
	opts := core.Options{RelativeSLA: SkewSLA}
	obj, err := core.OptimizeBest(in, opts)
	if err != nil {
		return SkewComparison{}, err
	}
	if !obj.Feasible {
		return SkewComparison{}, fmt.Errorf("bench: skew fixture infeasible at SLA %g on %s (object granularity)", SkewSLA, box.Name)
	}
	objCost, err := obj.Layout.CostCentsPerHour(fx.Cat, box)
	if err != nil {
		return SkewComparison{}, err
	}
	pt, err := catalog.BuildPartitioning(fx.Cat, fx.Stats, catalog.PartitionOptions{})
	if err != nil {
		return SkewComparison{}, err
	}
	pres, err := core.OptimizePartitioned(in, pt, opts)
	if err != nil {
		return SkewComparison{}, err
	}
	if !pres.Feasible {
		return SkewComparison{}, fmt.Errorf("bench: skew fixture infeasible at SLA %g on %s (partition granularity)", SkewSLA, box.Name)
	}
	partCost, err := pres.Layout.CostCentsPerHour(pt.UnitCatalog(), box)
	if err != nil {
		return SkewComparison{}, err
	}
	return SkewComparison{
		Box: box.Name,
		Object: SkewOutcome{
			Feasible:     obj.Feasible,
			TOCCents:     obj.TOCCents,
			StorageCents: objCost,
			Evaluated:    obj.Evaluated,
			Units:        fx.Cat.NumObjects(),
		},
		Partitioned: SkewOutcome{
			Feasible:     pres.Feasible,
			TOCCents:     pres.TOCCents,
			StorageCents: partCost,
			Evaluated:    pres.Evaluated,
			Units:        pt.NumUnits(),
			SplitObjects: pres.SplitObjects(),
		},
	}, nil
}

// Skew is the partition-granularity experiment: on the Zipf hot/cold
// fixture, DOT placing whole objects is contrasted with DOT placing
// heat-based partitions at the same SLA on the paper's two boxes. The
// partitioned search must meet the SLA at strictly lower storage cost —
// the claim the repository's acceptance test and benchguard gate on.
func Skew(w io.Writer, _ Options) (*FigureResult, error) {
	f := &FigureResult{ID: "skew: object vs partition granularity (Zipf hot/cold, SLA 0.2)"}
	for _, box := range boxes() {
		cmp, err := CompareSkew(box)
		if err != nil {
			return nil, err
		}
		for _, r := range []struct {
			name string
			o    SkewOutcome
		}{{"object-granular DOT", cmp.Object}, {"partition-granular DOT", cmp.Partitioned}} {
			f.addRow(box.Name, LayoutRow{
				Name:     fmt.Sprintf("%s (%d units)", r.name, r.o.Units),
				TOCCents: r.o.TOCCents,
				PSR:      psrOf(r.o.Feasible),
			})
		}
		f.note("%s: storage %.4e -> %.4e cents/h (%.1fx cheaper), %d of %d objects split",
			cmp.Box, cmp.Object.StorageCents, cmp.Partitioned.StorageCents,
			cmp.Object.StorageCents/cmp.Partitioned.StorageCents,
			cmp.Partitioned.SplitObjects, cmp.Object.Units)
	}
	f.print(w)
	return f, nil
}

func psrOf(feasible bool) float64 {
	if feasible {
		return 1
	}
	return 0
}
