package core

import (
	"math"
	"sort"
	"time"

	"dotprov/internal/catalog"
	"dotprov/internal/device"
	"dotprov/internal/search"
)

// Move is one candidate relocation m(g, p): place group g's objects with
// pattern p (§3.2). DeltaTime and DeltaCost are the components of the
// priority score (Eq. 2-3), Score their ratio (Eq. 4).
type Move struct {
	Group     catalog.Group
	Placement Pattern
	DeltaTime time.Duration // performance penalty vs L0 (Eq. 2)
	DeltaCost float64       // layout cost saving in cent/hour (Eq. 3)
	Score     float64       // DeltaTime / DeltaCost (Eq. 4), lower is better
}

// Apply returns a new layout with the move applied.
func (m Move) Apply(l catalog.Layout) catalog.Layout {
	out := l.Clone()
	for i, obj := range m.Group.Objects {
		out[obj] = m.Placement[i]
	}
	return out
}

// EnumerateMoves is Procedure 2: for every object group, consider every
// placement combination over the box's classes, score it against the
// starting layout L0 (all objects on class l0), and return the moves sorted
// by ascending priority score (most beneficial first).
//
// Moves that save nothing (DeltaCost <= 0) and don't improve performance
// are dropped; free wins (faster and not more expensive) sort first.
// Groups score independently, so scoring fans out across up to `workers`
// goroutines; the flattened, stably-sorted move list is identical at any
// width.
func EnumerateMoves(cat *catalog.Catalog, box *device.Box, ps *ProfileSet, l0 device.Class, concurrency, workers int) ([]Move, error) {
	l0Dev := box.Device(l0)
	groups := cat.Groups()
	perGroup := make([][]Move, len(groups))
	// Patterns depend only on the group size; enumerate each size once up
	// front instead of per group (k is typically uniform across groups, so
	// this also keeps pattern slices off the scoring loop's profile).
	classes := box.Classes()
	patternsByK := make(map[int][]Pattern)
	for _, g := range groups {
		if _, ok := patternsByK[g.Size()]; !ok {
			patternsByK[g.Size()] = enumeratePatterns(classes, g.Size())
		}
	}
	if err := search.Parallel(workers, len(groups), func(gi int) error {
		g := groups[gi]
		k := g.Size()
		p0 := Uniform(l0, k)
		prof0, err := ps.For(p0)
		if err != nil {
			return err
		}
		// T0[g]: the group's I/O time share under L0 (Eq. 1).
		var t0 time.Duration
		for _, obj := range g.Objects {
			t0 += prof0.ObjectIOTime(obj, l0Dev, concurrency)
		}
		for _, p := range patternsByK[k] {
			if p.equal(p0) {
				continue // identity move
			}
			profP, err := ps.For(p)
			if err != nil {
				return err
			}
			var tp time.Duration
			var saving float64
			for i, obj := range g.Objects {
				dev := box.Device(p[i])
				tp += profP.ObjectIOTime(obj, dev, concurrency)
				sizeGB := float64(cat.Object(obj).SizeBytes) / 1e9
				saving += (l0Dev.PriceCents - dev.PriceCents) * sizeGB
			}
			m := Move{
				Group:     g,
				Placement: p,
				DeltaTime: tp - t0,
				DeltaCost: saving,
			}
			switch {
			case m.DeltaCost > 0:
				m.Score = float64(m.DeltaTime) / m.DeltaCost
			case m.DeltaTime < 0:
				m.Score = math.Inf(-1) // faster and not cheaper to skip: free win
			default:
				continue // dominated: no saving, no speedup
			}
			perGroup[gi] = append(perGroup[gi], m)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	var moves []Move
	for _, gm := range perGroup {
		moves = append(moves, gm...)
	}
	sort.SliceStable(moves, func(i, j int) bool {
		if moves[i].Score != moves[j].Score {
			return moves[i].Score < moves[j].Score
		}
		// Deterministic tie-break: larger saving first, then group order.
		if moves[i].DeltaCost != moves[j].DeltaCost {
			return moves[i].DeltaCost > moves[j].DeltaCost
		}
		return moves[i].Group.Objects[0] < moves[j].Group.Objects[0]
	})
	return moves, nil
}
