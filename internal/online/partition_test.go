package online

import (
	"testing"
	"time"

	"dotprov/internal/catalog"
	"dotprov/internal/device"
	"dotprov/internal/workload"
)

// TestCollectorExtentStats: page-located charges build the per-extent
// histogram (bucketed at the configured width) while the window profile
// accumulates exactly as for page-blind charges.
func TestCollectorExtentStats(t *testing.T) {
	col := NewCollector(2)
	col.SetExtentPages(10)
	const obj = catalog.ObjectID(1)
	for p := int64(0); p < 10; p++ { // bucket 0: 10 hits
		col.ChargePageIO(obj, device.RandRead, p, 1)
	}
	col.ChargePageIO(obj, device.SeqRead, 25, 4) // bucket 2: 4 hits
	col.ChargeIO(obj, device.RandRead, 3)        // page-blind: profile only

	st := col.ExtentStats()
	exts := st.ByObject[obj]
	if len(exts) != 3 {
		t.Fatalf("got %d extents, want 3", len(exts))
	}
	if exts[0].Count != 10 || exts[1].Count != 0 || exts[2].Count != 4 {
		t.Fatalf("extent counts %v, want [10 0 4]", exts)
	}
	if exts[0].Pages != 10 || st.PageBytes <= 0 {
		t.Fatalf("extent geometry wrong: %+v page bytes %d", exts[0], st.PageBytes)
	}
	w := col.Roll(time.Second)
	if got := w.Profile.Get(obj)[device.RandRead]; got != 13 {
		t.Fatalf("window rand reads %g, want 13 (page-located + page-blind)", got)
	}
	col.ResetExtents()
	if len(col.ExtentStats().ByObject) != 0 {
		t.Fatal("ResetExtents left histograms behind")
	}
}

// TestManagerPartitionGranular: a manager configured with a partitioning
// advises unit-granular layouts — the initial advise splits the skewed
// tables and its migration plan moves only the cold extents, not whole
// tables.
func TestManagerPartitionGranular(t *testing.T) {
	fx, err := workload.Skewed(workload.SkewedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := catalog.BuildPartitioning(fx.Cat, fx.Stats, catalog.PartitionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	box := device.Box2()
	mgr, err := NewManager(Config{
		Cat:          fx.Cat,
		Box:          box,
		SLA:          0.2,
		Partitioning: pt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mgr.Partitioning() != pt {
		t.Fatal("manager lost its partitioning")
	}
	// Windows arrive object-granular (the engine taps and the /observe wire
	// path both charge objects); the manager apportions internally.
	mgr.Observe(Window{Profile: fx.Profile, CPU: fx.CPU, Elapsed: time.Second})
	dec, err := mgr.Advise()
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Feasible {
		t.Fatal("initial partitioned advise infeasible")
	}
	if len(dec.To) != pt.NumUnits() {
		t.Fatalf("decision layout has %d entries, want %d units", len(dec.To), pt.NumUnits())
	}
	if _, ok := pt.CollapseLayout(dec.To); ok {
		t.Fatal("expected a genuinely sub-object layout (some object split)")
	}
	// The deployed layout starts at L0 (everything on H-SSD); the advise
	// migrates the cold tails only, so the moved bytes must be a strict
	// subset of the database.
	if dec.Migration.Bytes <= 0 || dec.Migration.Bytes >= fx.Cat.TotalSize() {
		t.Fatalf("migration moved %d bytes, want a strict non-empty subset of %d",
			dec.Migration.Bytes, fx.Cat.TotalSize())
	}
	for _, mv := range dec.Migration.Moves {
		if u := pt.Unit(mv.Obj); u.Name == "" {
			t.Fatalf("migration move references unknown unit %d", mv.Obj)
		}
	}
	// Per-partition accounting: the moved bytes equal the sizes of exactly
	// the units that changed class.
	if want := workload.UnitMigrationBytes(pt, dec.From, dec.To); dec.Migration.Bytes != want {
		t.Fatalf("migration bytes %d != per-unit accounting %d", dec.Migration.Bytes, want)
	}
	// Undrifted follow-up window: no re-advise.
	mgr.Observe(Window{Profile: fx.Profile, CPU: fx.CPU, Elapsed: time.Second})
	dec2, err := mgr.ReAdvise(false)
	if err != nil {
		t.Fatal(err)
	}
	if dec2.ReAdvised {
		t.Fatal("undrifted window must not re-advise")
	}
}

// TestManagerPartitioningValidation: a partitioning from a foreign catalog
// is rejected.
func TestManagerPartitioningValidation(t *testing.T) {
	fx, err := workload.Skewed(workload.SkewedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	other, err := workload.Skewed(workload.SkewedConfig{Tables: 2})
	if err != nil {
		t.Fatal(err)
	}
	pt := catalog.IdentityPartitioning(other.Cat)
	if _, err := NewManager(Config{Cat: fx.Cat, Box: device.Box1(), SLA: 0.5, Partitioning: pt}); err == nil {
		t.Fatal("expected a foreign partitioning to be rejected")
	}
}
