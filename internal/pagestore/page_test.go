package pagestore

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func TestPageInsertGet(t *testing.T) {
	p := NewPage()
	s1, err := p.Insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Insert([]byte("world!"))
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("slots must differ")
	}
	got, err := p.Get(s1)
	if err != nil || string(got) != "hello" {
		t.Fatalf("Get(s1) = %q, %v", got, err)
	}
	got, err = p.Get(s2)
	if err != nil || string(got) != "world!" {
		t.Fatalf("Get(s2) = %q, %v", got, err)
	}
}

func TestPageGetErrors(t *testing.T) {
	p := NewPage()
	if _, err := p.Get(0); err != ErrNoSlot {
		t.Fatal("Get on empty page should be ErrNoSlot")
	}
	if _, err := p.Get(-1); err != ErrNoSlot {
		t.Fatal("negative slot should be ErrNoSlot")
	}
	s, _ := p.Insert([]byte("x"))
	if err := p.Delete(s); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(s); err != ErrNoSlot {
		t.Fatal("deleted slot should be ErrNoSlot")
	}
	if err := p.Delete(s); err != ErrNoSlot {
		t.Fatal("double delete should be ErrNoSlot")
	}
}

func TestPageFull(t *testing.T) {
	p := NewPage()
	rec := make([]byte, 1000)
	n := 0
	for {
		if _, err := p.Insert(rec); err != nil {
			if err != ErrPageFull {
				t.Fatal(err)
			}
			break
		}
		n++
	}
	// 8192 bytes / (1000 + 4 slot) -> 8 records fit.
	if n != 8 {
		t.Fatalf("fit %d 1000-byte records, want 8", n)
	}
	if _, err := p.Insert(make([]byte, PageSize)); err == nil {
		t.Fatal("record larger than page must be rejected")
	}
}

func TestPageDeleteReclaimViaCompaction(t *testing.T) {
	p := NewPage()
	rec := make([]byte, 1000)
	var slots []int
	for i := 0; i < 8; i++ {
		s, err := p.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	// Delete two, then a new 1500-byte record should fit via compaction.
	if err := p.Delete(slots[2]); err != nil {
		t.Fatal(err)
	}
	if err := p.Delete(slots[5]); err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{0xAB}, 1500)
	s, err := p.Insert(big)
	if err != nil {
		t.Fatalf("insert after deletes should succeed via compaction: %v", err)
	}
	got, err := p.Get(s)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatal("record corrupted by compaction")
	}
	// Survivors must be intact and keep their slots.
	for _, i := range []int{0, 1, 3, 4, 6, 7} {
		got, err := p.Get(slots[i])
		if err != nil || len(got) != 1000 {
			t.Fatalf("survivor slot %d damaged: %v", slots[i], err)
		}
	}
}

func TestPageUpdateInPlace(t *testing.T) {
	p := NewPage()
	s, _ := p.Insert([]byte("abcdef"))
	if err := p.Update(s, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Get(s)
	if string(got) != "xyz" {
		t.Fatalf("Get after shrink-update = %q", got)
	}
}

func TestPageUpdateGrowRelocates(t *testing.T) {
	p := NewPage()
	s1, _ := p.Insert([]byte("aa"))
	s2, _ := p.Insert([]byte("bb"))
	big := bytes.Repeat([]byte{'Z'}, 500)
	if err := p.Update(s1, big); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Get(s1)
	if !bytes.Equal(got, big) {
		t.Fatal("grown record wrong")
	}
	got, _ = p.Get(s2)
	if string(got) != "bb" {
		t.Fatal("neighbour damaged by relocation")
	}
}

func TestPageUpdateGrowViaCompaction(t *testing.T) {
	p := NewPage()
	rec := make([]byte, 1000)
	var slots []int
	for i := 0; i < 8; i++ {
		s, _ := p.Insert(rec)
		slots = append(slots, s)
	}
	p.Delete(slots[0])
	// Growing slot 1 to 1300 requires reclaiming the deleted record's space.
	big := bytes.Repeat([]byte{1}, 1300)
	if err := p.Update(slots[1], big); err != nil {
		t.Fatalf("grow via compaction failed: %v", err)
	}
	got, _ := p.Get(slots[1])
	if !bytes.Equal(got, big) {
		t.Fatal("grown record wrong after compaction")
	}
	// Growing beyond what the page can ever hold fails.
	if err := p.Update(slots[1], make([]byte, 8000)); err != ErrPageFull {
		t.Fatalf("oversize grow = %v, want ErrPageFull", err)
	}
}

func TestPageUpdateErrors(t *testing.T) {
	p := NewPage()
	if err := p.Update(0, []byte("x")); err != ErrNoSlot {
		t.Fatal("update of missing slot should be ErrNoSlot")
	}
	s, _ := p.Insert([]byte("x"))
	p.Delete(s)
	if err := p.Update(s, []byte("y")); err != ErrNoSlot {
		t.Fatal("update of deleted slot should be ErrNoSlot")
	}
}

// Property: a page behaves like a map slot->record under arbitrary
// insert/update/delete sequences.
func TestPageModelProperty(t *testing.T) {
	type op struct {
		Kind byte
		Slot uint8
		Size uint16
	}
	f := func(ops []op) bool {
		p := NewPage()
		model := map[int][]byte{}
		var slots []int
		for i, o := range ops {
			payload := bytes.Repeat([]byte{byte(i)}, int(o.Size%600)+1)
			switch o.Kind % 3 {
			case 0: // insert
				s, err := p.Insert(payload)
				if err == ErrPageFull {
					continue
				}
				if err != nil {
					return false
				}
				model[s] = payload
				slots = append(slots, s)
			case 1: // update
				if len(slots) == 0 {
					continue
				}
				s := slots[int(o.Slot)%len(slots)]
				if _, live := model[s]; !live {
					continue
				}
				err := p.Update(s, payload)
				if err == ErrPageFull {
					continue
				}
				if err != nil {
					return false
				}
				model[s] = payload
			case 2: // delete
				if len(slots) == 0 {
					continue
				}
				s := slots[int(o.Slot)%len(slots)]
				if _, live := model[s]; !live {
					continue
				}
				if err := p.Delete(s); err != nil {
					return false
				}
				delete(model, s)
			}
		}
		for s, want := range model {
			got, err := p.Get(s)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestRIDString(t *testing.T) {
	if got := (RID{Page: 3, Slot: 9}).String(); got != "(3,9)" {
		t.Fatalf("RID string = %q", got)
	}
}

func TestFreeSpaceMonotonicallyDecreases(t *testing.T) {
	p := NewPage()
	prev := p.FreeSpace()
	for i := 0; i < 10; i++ {
		if _, err := p.Insert([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
		cur := p.FreeSpace()
		if cur >= prev {
			t.Fatal("free space should shrink on insert")
		}
		prev = cur
	}
}
