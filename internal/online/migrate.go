package online

import (
	"time"

	"dotprov/internal/catalog"
	"dotprov/internal/device"
	"dotprov/internal/pagestore"
	"dotprov/internal/search"
	"dotprov/internal/workload"
)

// DefaultHeadroomFraction is the share of the SLA headroom a candidate's
// migration may consume when Config.HeadroomFraction is 0: moving data is
// allowed to eat at most half the slack between the candidate's estimated
// elapsed time and what the SLA permits.
const DefaultHeadroomFraction = 0.5

// MigrationPlan prices moving the database from one layout to another:
// every placement unit whose class changes is read sequentially from its
// source class and rewritten, page at a time, at its destination class's
// sequential-write rate — the "bytes moved × class write cost" of the
// online objective. At partition granularity (a MigrationModel over a
// partitioning's unit catalog) the moves are per-partition: re-advising a
// drifted hot tail prices only the tail's extents, not its whole table.
type MigrationPlan struct {
	// Moves lists the placement units (objects, or partitions at partition
	// granularity) changing class.
	Moves []workload.ObjectMove
	// Bytes is the total size of the moved objects (bytes rewritten at
	// their destination classes).
	Bytes int64
	// Time is the estimated migration time on the virtual clock: per moved
	// object, pages × τ(SR, source) + pages × τ(SW, destination).
	Time time.Duration
}

// MigrationModel prices layout transitions against a box. It is a pure
// reader and safe for concurrent use.
type MigrationModel struct {
	// Cat is the catalog the priced layouts are keyed by — the unit catalog
	// when pricing partition-granular transitions.
	Cat *catalog.Catalog
	Box *device.Box
	// Concurrency resolves the service times migration I/O is charged at;
	// 0 selects 1 (migration as a single background stream).
	Concurrency int
}

func (m MigrationModel) conc() int {
	if m.Concurrency < 1 {
		return 1
	}
	return m.Concurrency
}

// moveTime prices relocating size bytes from one class to another.
func (m MigrationModel) moveTime(size int64, from, to device.Class) time.Duration {
	if size <= 0 {
		return 0
	}
	pages := (size + pagestore.PageSize - 1) / pagestore.PageSize
	var t time.Duration
	if d := m.Box.Device(from); d != nil {
		t += time.Duration(pages) * d.ServiceTime(device.SeqRead, m.conc())
	}
	if d := m.Box.Device(to); d != nil {
		t += time.Duration(pages) * d.ServiceTime(device.SeqWrite, m.conc())
	}
	return t
}

// Plan diffs two layouts and prices the transition. Objects absent from
// either layout are ignored (a layout must be total over the catalog for
// the engine to run it; partial inputs here would be a caller bug surfaced
// elsewhere).
func (m MigrationModel) Plan(from, to catalog.Layout) MigrationPlan {
	var p MigrationPlan
	for _, o := range m.Cat.Objects() {
		src, okFrom := from[o.ID]
		dst, okTo := to[o.ID]
		if !okFrom || !okTo || src == dst {
			continue
		}
		p.Moves = append(p.Moves, workload.ObjectMove{Obj: o.ID, From: src, To: dst})
		p.Bytes += o.SizeBytes
		p.Time += m.moveTime(o.SizeBytes, src, dst)
	}
	return p
}

// Gate builds the admission hook for core.OptimizeIncremental: a candidate
// is admitted only when its migration time off the seed layout fits within
// frac of the SLA headroom — allowed elapsed (baseline / relative SLA)
// minus the candidate's own estimated elapsed. Candidates that move
// nothing always pass; when the constraints carry no baseline elapsed
// (nothing to budget against), the gate admits and the SLA check alone
// governs. On the compiled path the diff is a flat byte comparison against
// the seed's compact form; no maps are materialized per candidate.
func (m MigrationModel) Gate(seed catalog.Layout, frac float64) func(search.Eval, workload.Constraints) bool {
	if frac <= 0 {
		frac = DefaultHeadroomFraction
	}
	sizes := m.Cat.DenseSizeBytes()
	seedCompact, compactOK := catalog.CompactFromLayout(m.Cat, seed)
	return func(ev search.Eval, cons workload.Constraints) bool {
		var mig time.Duration
		if compactOK && !ev.Compact.IsZero() {
			sb, cb := seedCompact.Bytes(), ev.Compact.Bytes()
			for i := 0; i < len(cb) && i < len(sb); i++ {
				if sb[i] != cb[i] && i < len(sizes) {
					mig += m.moveTime(sizes[i], device.Class(sb[i]), device.Class(cb[i]))
				}
			}
		} else {
			cand := ev.LayoutMap()
			for _, o := range m.Cat.Objects() {
				src, okFrom := seed[o.ID]
				dst, okTo := cand[o.ID]
				if okFrom && okTo && src != dst {
					mig += m.moveTime(o.SizeBytes, src, dst)
				}
			}
		}
		if mig == 0 {
			return true
		}
		if cons.Baseline.Elapsed <= 0 || cons.Relative <= 0 {
			return true
		}
		allowed := time.Duration(float64(cons.Baseline.Elapsed) / cons.Relative)
		headroom := allowed - ev.Metrics.Elapsed
		if headroom <= 0 {
			return false
		}
		return float64(mig) <= frac*float64(headroom)
	}
}
