package search

// Budget is a worker budget shared across engines. A provisioning sweep
// (paper §5) runs one inner layout search per candidate configuration; each
// search owns an Engine, but the machine only has so many cores. Passing one
// Budget to every engine's Config bounds the number of concurrent estimator
// invocations across ALL of them at the budget's width, no matter how many
// candidates are in flight.
//
// A Budget is safe for concurrent use. The zero value is not usable; call
// NewBudget.
type Budget struct {
	workers int
	sem     chan struct{}
}

// NewBudget returns a budget of the given width. Widths below 2 select the
// sequential path: engines sharing the budget evaluate on their calling
// goroutines only.
func NewBudget(workers int) *Budget {
	if workers < 1 {
		workers = 1
	}
	b := &Budget{workers: workers}
	if workers > 1 {
		b.sem = make(chan struct{}, workers)
	}
	return b
}

// Workers returns the budget's width.
func (b *Budget) Workers() int { return b.workers }
