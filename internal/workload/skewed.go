// Skewed is the Zipf hot/cold fixture generator: a synthetic TPC-C-shaped
// catalog whose access profile follows a Zipf law over each object's pages
// — the skewed access pattern that dominates HTAP mixes, where a small hot
// head of a fact table absorbs most of the I/O while the long tail sits
// cold. It is the fixture partition-granular placement is evaluated on:
// object-granular DOT must keep a whole hot-headed table on expensive
// storage to hold the SLA, while partitioned DOT places only the hot head
// there and ships the cold tail to a cheap class at the same SLA.
package workload

import (
	"fmt"
	"math"
	"time"

	"dotprov/internal/catalog"
	"dotprov/internal/device"
	"dotprov/internal/iosim"
	"dotprov/internal/types"
)

// SkewedConfig scales the Zipf hot/cold fixture. Zero values select the
// documented defaults.
type SkewedConfig struct {
	// Tables is the number of fact tables (default 3). Table k is named
	// "fact<k>" and sized SizeBytes >> k (each successive table half the
	// previous), with a "fact<k>_pkey" index at 1/8 of the table's size.
	Tables int
	// SizeBytes is the largest table's size (default 24 GB).
	SizeBytes int64
	// PageBytes is the page size heat is expressed in (default
	// catalog.DefaultPageBytes).
	PageBytes int64
	// Extents is the number of equal page runs each object's heat histogram
	// uses (default 16).
	Extents int
	// Theta is the Zipf exponent over pages (default 1.1). Higher
	// concentrates more of the I/O in the first extents.
	Theta float64
	// ReadsPerGB scales the random page reads per GB of table (default
	// 20000); a 1/20 share of sequential reads and a 1/50 share of row
	// writes ride along, mirroring a transactional mix with occasional
	// scans.
	ReadsPerGB float64
	// CPUMillis is the workload's CPU time in milliseconds (default 50);
	// layout-invariant.
	CPUMillis float64
}

func (c SkewedConfig) withDefaults() SkewedConfig {
	if c.Tables < 1 {
		c.Tables = 3
	}
	if c.SizeBytes <= 0 {
		c.SizeBytes = 24e9
	}
	if c.PageBytes <= 0 {
		c.PageBytes = catalog.DefaultPageBytes
	}
	if c.Extents < 1 {
		c.Extents = 16
	}
	if c.Theta <= 0 {
		c.Theta = 1.1
	}
	if c.ReadsPerGB <= 0 {
		c.ReadsPerGB = 20000
	}
	if c.CPUMillis < 0 {
		c.CPUMillis = 0
	} else if c.CPUMillis == 0 {
		c.CPUMillis = 50
	}
	return c
}

// SkewedFixture is the generated fixture: the catalog, the Zipf-skewed
// workload profile, the per-extent access statistics the partitioner
// consumes, and the workload's CPU time.
type SkewedFixture struct {
	Cat     *catalog.Catalog
	Profile iosim.Profile
	Stats   catalog.ExtentStats
	CPU     time.Duration
}

// Estimator returns the fixture's observed-counts estimator bound to a box
// (one synthetic query carrying the whole profile — the §4.5-style
// test-run path, which is partition-capable).
func (f *SkewedFixture) Estimator(box *device.Box, concurrency int) Estimator {
	return &ObservedEstimator{
		Box:         box,
		Concurrency: concurrency,
		PerQuery:    []QueryObservation{{Profile: f.Profile, CPU: f.CPU}},
	}
}

// Skewed generates the Zipf hot/cold fixture deterministically: equal
// configs yield bit-identical catalogs, profiles and statistics (the heat
// law is computed analytically, no sampling).
func Skewed(cfg SkewedConfig) (*SkewedFixture, error) {
	cfg = cfg.withDefaults()
	cat := catalog.New()
	profile := iosim.NewProfile()
	stats := catalog.ExtentStats{
		PageBytes: cfg.PageBytes,
		ByObject:  make(map[catalog.ObjectID][]catalog.Extent),
	}
	schema := types.NewSchema(types.Column{Name: "k", Kind: types.KindInt})
	size := cfg.SizeBytes
	for k := 0; k < cfg.Tables; k++ {
		name := fmt.Sprintf("fact%d", k)
		tab, err := cat.CreateTable(name, schema, []string{"k"})
		if err != nil {
			return nil, err
		}
		ix, err := cat.CreateIndex(name+"_pkey", tab.ID, []string{"k"}, true)
		if err != nil {
			return nil, err
		}
		cat.SetSize(tab.ID, size)
		cat.SetSize(ix.ID, size/8)
		reads := cfg.ReadsPerGB * float64(size) / 1e9
		if err := skewObject(cat, tab.ID, cfg, reads, &stats, profile); err != nil {
			return nil, err
		}
		// Index traffic is uniform random reads: B+-tree descents hit root
		// and inner pages everywhere; indexes stay unsplit (cold histogram).
		profile.Add(ix.ID, device.RandRead, reads/4)
		size /= 2
	}
	return &SkewedFixture{
		Cat:     cat,
		Profile: profile,
		Stats:   stats,
		CPU:     time.Duration(cfg.CPUMillis * float64(time.Millisecond)),
	}, nil
}

// skewObject lays the Zipf access law over one object: extent e of E equal
// page runs receives the analytic Zipf mass of its page range,
// sum_{p in extent} p^-theta, so the first extent is the hot head and the
// tail decays. The object's profile rows and its extent histogram are
// driven by the same law, keeping heat and I/O consistent.
func skewObject(cat *catalog.Catalog, id catalog.ObjectID, cfg SkewedConfig, reads float64, stats *catalog.ExtentStats, profile iosim.Profile) error {
	o := cat.Object(id)
	pages := (o.SizeBytes + cfg.PageBytes - 1) / cfg.PageBytes
	if pages < int64(cfg.Extents) {
		return fmt.Errorf("workload: skewed object %q too small for %d extents", o.Name, cfg.Extents)
	}
	per := pages / int64(cfg.Extents)
	weights := make([]float64, cfg.Extents)
	var total float64
	for e := 0; e < cfg.Extents; e++ {
		lo := int64(e) * per
		hi := lo + per
		if e == cfg.Extents-1 {
			hi = pages
		}
		// Analytic Zipf mass of pages (lo, hi]: integral of x^-theta.
		weights[e] = zipfMass(float64(lo+1), float64(hi+1), cfg.Theta)
		total += weights[e]
		stats.ByObject[id] = append(stats.ByObject[id], catalog.Extent{Pages: hi - lo})
	}
	exts := stats.ByObject[id]
	for e := range exts {
		share := weights[e] / total
		exts[e].Count = reads * share
	}
	// The profile carries the object's totals: the random reads, a 1/20
	// share of sequential scan reads and a 1/50 share of row writes. All
	// follow the same heat law, which apportioning re-applies per unit.
	profile.Add(id, device.RandRead, reads)
	profile.Add(id, device.SeqRead, reads/20)
	profile.Add(id, device.SeqWrite, reads/50)
	return nil
}

// zipfMass integrates x^-theta over [lo, hi] — the closed-form Zipf weight
// of a page range, exact and sampling-free.
func zipfMass(lo, hi, theta float64) float64 {
	if theta == 1 {
		return math.Log(hi) - math.Log(lo)
	}
	e := 1 - theta
	return (math.Pow(hi, e) - math.Pow(lo, e)) / e
}
