// Package faultinject provides deterministic, seeded fault injection for
// the crash-safety test surface: a filesystem seam the snapshot store
// writes through (short/torn writes, ENOSPC, rename failure, fsync
// failure, latency spikes) and an HTTP middleware for serve-layer latency.
// Faults are drawn from one seeded PRNG in operation order, so a fault
// plan replays identically run over run — the crash-test harness and CI
// assert against exact, reproducible failure sequences instead of hoping
// the right race fires.
package faultinject

import (
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// File is the writable-file surface the snapshot store needs: enough to
// write, fsync and atomically publish a snapshot, small enough to wrap
// with fault injection.
type File interface {
	io.Writer
	// Sync flushes the file to stable storage.
	Sync() error
	// Close closes the file.
	Close() error
	// Name returns the file's path.
	Name() string
}

// FS is the filesystem seam durable state goes through. The real
// implementation is OS; Wrap layers a fault Plan over any FS.
type FS interface {
	// MkdirAll creates a directory and its parents.
	MkdirAll(path string, perm os.FileMode) error
	// CreateTemp creates a new temporary file in dir (see os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(path string) error
	// ReadFile reads a whole file.
	ReadFile(path string) ([]byte, error)
	// ReadDir lists a directory.
	ReadDir(path string) ([]fs.DirEntry, error)
	// SyncDir fsyncs a directory, making renames within it durable.
	SyncDir(path string) error
}

// osFS is the passthrough FS over the real filesystem.
type osFS struct{}

// OS is the real filesystem.
var OS FS = osFS{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) ReadDir(path string) ([]fs.DirEntry, error) { return os.ReadDir(path) }

func (osFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	// Some filesystems reject directory fsync; the rename above is still
	// atomic there, so degrade silently rather than failing the snapshot.
	_ = d.Sync()
	return d.Close()
}

// Plan is a seeded fault schedule: per-operation probabilities of each
// fault kind, plus an optional injected latency. The zero Plan injects
// nothing. Draws come from one PRNG seeded with Seed, in operation order,
// so a plan is deterministic for a deterministic caller.
type Plan struct {
	// Seed seeds the PRNG the probabilities are drawn from.
	Seed int64
	// WriteFail is the probability a write fails outright with ENOSPC.
	WriteFail float64
	// ShortWrite is the probability a write persists only half its bytes
	// and then fails with ENOSPC — the torn-file case.
	ShortWrite float64
	// SyncFail is the probability an fsync (file or directory) fails.
	SyncFail float64
	// RenameFail is the probability a rename fails.
	RenameFail float64
	// Latency, when positive, is injected before an operation with
	// probability LatencyP.
	Latency time.Duration
	// LatencyP is the probability of a latency injection (0 disables).
	LatencyP float64
}

// ParsePlan parses a fault plan from its flag form: comma-separated
// key=value pairs, e.g.
//
//	seed=42,write=0.1,short=0.2,sync=0.05,rename=0.1,latency=2ms,latencyp=0.5
//
// Unknown keys and out-of-range probabilities are errors. The empty string
// parses to nil (no faults).
func ParsePlan(s string) (*Plan, error) {
	if s == "" {
		return nil, nil
	}
	p := &Plan{}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: malformed pair %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "seed":
			p.Seed, err = strconv.ParseInt(v, 10, 64)
		case "write":
			p.WriteFail, err = parseProb(v)
		case "short":
			p.ShortWrite, err = parseProb(v)
		case "sync":
			p.SyncFail, err = parseProb(v)
		case "rename":
			p.RenameFail, err = parseProb(v)
		case "latency":
			p.Latency, err = time.ParseDuration(v)
		case "latencyp":
			p.LatencyP, err = parseProb(v)
		default:
			return nil, fmt.Errorf("faultinject: unknown key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("faultinject: key %q: %w", k, err)
		}
	}
	return p, nil
}

func parseProb(v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("probability %g outside [0, 1]", f)
	}
	return f, nil
}

// Stats counts a FaultyFS's activity: total operations seen and faults
// injected by kind.
type Stats struct {
	// Ops is the total operations that passed through the seam.
	Ops int64
	// WriteFails, ShortWrites, SyncFails and RenameFails count injected
	// faults by kind.
	WriteFails  int64
	ShortWrites int64
	SyncFails   int64
	RenameFails int64
}

// FaultyFS wraps an FS with a fault Plan. It is safe for concurrent use;
// concurrent callers serialize on the PRNG, which keeps the draw sequence
// well-defined.
type FaultyFS struct {
	fs   FS
	plan *Plan

	mu  sync.Mutex
	rng *rand.Rand

	ops         atomic.Int64
	writeFails  atomic.Int64
	shortWrites atomic.Int64
	syncFails   atomic.Int64
	renameFails atomic.Int64
}

// Wrap layers plan over fs. A nil plan wraps nothing and returns a
// passthrough.
func Wrap(fsys FS, plan *Plan) *FaultyFS {
	p := plan
	if p == nil {
		p = &Plan{}
	}
	return &FaultyFS{fs: fsys, plan: p, rng: rand.New(rand.NewSource(p.Seed))}
}

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultyFS) Stats() Stats {
	return Stats{
		Ops:         f.ops.Load(),
		WriteFails:  f.writeFails.Load(),
		ShortWrites: f.shortWrites.Load(),
		SyncFails:   f.syncFails.Load(),
		RenameFails: f.renameFails.Load(),
	}
}

// draw returns one uniform [0,1) variate from the plan's PRNG.
func (f *FaultyFS) draw() float64 {
	f.mu.Lock()
	v := f.rng.Float64()
	f.mu.Unlock()
	return v
}

// maybeLatency injects the plan's latency with probability LatencyP.
func (f *FaultyFS) maybeLatency() {
	if f.plan.Latency > 0 && f.plan.LatencyP > 0 && f.draw() < f.plan.LatencyP {
		time.Sleep(f.plan.Latency)
	}
}

// enospc is the injected out-of-space error, wrapped like the real one so
// errors.Is(err, syscall.ENOSPC) holds.
func enospc(op, path string) error {
	return &os.PathError{Op: op, Path: path, Err: syscall.ENOSPC}
}

// MkdirAll implements FS (never faulted: the store's directory setup is
// not part of the write path under test).
func (f *FaultyFS) MkdirAll(path string, perm os.FileMode) error {
	f.ops.Add(1)
	return f.fs.MkdirAll(path, perm)
}

// CreateTemp implements FS; the returned file's writes and syncs draw
// faults from the plan.
func (f *FaultyFS) CreateTemp(dir, pattern string) (File, error) {
	f.ops.Add(1)
	f.maybeLatency()
	inner, err := f.fs.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultyFile{File: inner, fs: f}, nil
}

// Rename implements FS, failing with the plan's rename probability.
func (f *FaultyFS) Rename(oldpath, newpath string) error {
	f.ops.Add(1)
	f.maybeLatency()
	if f.plan.RenameFail > 0 && f.draw() < f.plan.RenameFail {
		f.renameFails.Add(1)
		return enospc("rename", newpath)
	}
	return f.fs.Rename(oldpath, newpath)
}

// Remove implements FS (never faulted: pruning best-effort old
// generations must not mask write faults).
func (f *FaultyFS) Remove(path string) error {
	f.ops.Add(1)
	return f.fs.Remove(path)
}

// ReadFile implements FS.
func (f *FaultyFS) ReadFile(path string) ([]byte, error) {
	f.ops.Add(1)
	f.maybeLatency()
	return f.fs.ReadFile(path)
}

// ReadDir implements FS.
func (f *FaultyFS) ReadDir(path string) ([]fs.DirEntry, error) {
	f.ops.Add(1)
	return f.fs.ReadDir(path)
}

// SyncDir implements FS, failing with the plan's sync probability.
func (f *FaultyFS) SyncDir(path string) error {
	f.ops.Add(1)
	if f.plan.SyncFail > 0 && f.draw() < f.plan.SyncFail {
		f.syncFails.Add(1)
		return enospc("syncdir", path)
	}
	return f.fs.SyncDir(path)
}

// faultyFile injects write and sync faults into one open file.
type faultyFile struct {
	File
	fs *FaultyFS
}

// Write implements io.Writer: full failure with WriteFail, a half-persisted
// torn write with ShortWrite, passthrough otherwise.
func (f *faultyFile) Write(p []byte) (int, error) {
	f.fs.ops.Add(1)
	f.fs.maybeLatency()
	if f.fs.plan.WriteFail > 0 && f.fs.draw() < f.fs.plan.WriteFail {
		f.fs.writeFails.Add(1)
		return 0, enospc("write", f.Name())
	}
	if f.fs.plan.ShortWrite > 0 && f.fs.draw() < f.fs.plan.ShortWrite {
		f.fs.shortWrites.Add(1)
		n, err := f.File.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, enospc("write", f.Name())
	}
	return f.File.Write(p)
}

// Sync implements File, failing with the plan's sync probability.
func (f *faultyFile) Sync() error {
	f.fs.ops.Add(1)
	if f.fs.plan.SyncFail > 0 && f.fs.draw() < f.fs.plan.SyncFail {
		f.fs.syncFails.Add(1)
		return enospc("sync", f.Name())
	}
	return f.File.Sync()
}

// Middleware wraps an HTTP handler with the plan's serve-layer latency
// spikes (the other fault kinds are I/O-shaped and do not apply). A nil
// plan returns next unchanged. The middleware draws from its own PRNG
// (Seed+1) so the serve layer's draws do not perturb the snapshot I/O
// fault sequence.
func Middleware(plan *Plan, next http.Handler) http.Handler {
	if plan == nil || plan.Latency <= 0 || plan.LatencyP <= 0 {
		return next
	}
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(plan.Seed + 1))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		spike := rng.Float64() < plan.LatencyP
		mu.Unlock()
		if spike {
			time.Sleep(plan.Latency)
		}
		next.ServeHTTP(w, r)
	})
}
