package provision

import (
	"fmt"

	"dotprov/internal/catalog"
	"dotprov/internal/core"
	"dotprov/internal/device"
	"dotprov/internal/search"
	"dotprov/internal/workload"
)

// SweepConfigurations solves the generalized provisioning problem over a
// declarative grid (§5.1 + §5.2): every candidate box enumerated from the
// grid is priced with its alpha blend point of the discrete-sized cost
// model, and each candidate's inner layout search runs through the shared
// layout-search engine (internal/search) under
//
//   - a per-sweep metrics memo: base.Est is wrapped in one
//     search.MemoEstimator shared by every candidate, so a layout estimated
//     while searching one box is never re-estimated for another (estimator
//     metrics depend only on the layout's classes, not on unit counts or
//     prices); and
//   - a global worker budget: base.Budget (or a fresh budget of width
//     base.Workers when unset) bounds concurrent estimator invocations
//     across ALL in-flight candidate searches, not per candidate. Passing a
//     budget shared with other sweeps extends the bound across them (e.g.
//     one server-wide budget over all concurrent requests).
//
// base supplies Cat, Est, Profiles, Concurrency and the worker budget; its
// Box and LayoutCost are ignored and rebound per candidate. base.Est must
// be bound to a box covering every class in the grid (see Grid.Universe)
// and, when the budget is wider than 1, safe for concurrent use (the
// workload.Estimator contract).
//
// The sweep is deterministic at any worker count: candidates keep their
// enumeration index, every inner search is itself deterministic, and TOC
// ties break toward the lowest index — the sequential first-found-wins rule.
// Infeasible candidates carry a Failure diagnosis; a candidate whose search
// errors fails the sweep with the lowest-index error.
func SweepConfigurations(base core.Input, grid Grid, opts core.Options) (*Choice, error) {
	specs, err := grid.Enumerate()
	if err != nil {
		return nil, err
	}
	if base.Est == nil {
		return nil, fmt.Errorf("provision: sweep requires an estimator")
	}
	// Compile the estimator ONCE for the whole sweep: the compiled
	// per-(object, class) time tables depend only on the class service times
	// (identical across candidate boxes), so every candidate's engine reuses
	// one compilation, and the shared memo answers compact probes across
	// candidates. Estimators without a compiled form pass through unchanged.
	memoEst := search.Memoize(workload.CompileEstimator(base.Est, base.Cat), 0)
	budget := base.Budget
	if budget == nil {
		budget = search.NewBudget(base.Workers)
	}
	results := make([]CandidateResult, len(specs))
	err = search.Parallel(budget.Workers(), len(specs), func(i int) error {
		spec := specs[i]
		box := spec.Box()
		model, compactModel, err := DiscreteCostModels(base.Cat, box, spec.Alpha)
		if err != nil {
			return err
		}
		in := base
		in.Box = box
		in.Est = memoEst
		in.LayoutCost = model
		in.LayoutCostCompact = compactModel
		// The discrete model prices per-class byte totals only (ceil'd unit
		// counts), so swapping equal-sized symmetric units between classes
		// cannot change its value: dominance collapsing stays sound even
		// though cost bounding is off for custom models.
		in.LayoutCostClassSymmetric = true
		in.Budget = budget
		// OptimizeBest (guarded + greedy sweeps) rather than Optimize: the
		// discrete-sized model has cost valleys a monotonic walk cannot
		// cross, and both sweeps share the engine memo anyway.
		res, err := core.OptimizeBest(in, opts)
		if err != nil {
			return fmt.Errorf("provision: candidate %q: %w", spec.Name, err)
		}
		sp := spec
		results[i] = CandidateResult{Name: spec.Name, Spec: &sp, Result: res}
		if !res.Feasible {
			results[i].Failure = InfeasibilityReason(base.Cat, box, opts)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	ch := &Choice{Best: -1, Results: results, EstimatorCalls: memoEst.Calls()}
	for i, r := range results {
		ch.Evaluated += r.Result.Evaluated
		if !r.Result.Feasible {
			continue
		}
		if ch.Best < 0 || r.Result.TOCCents < results[ch.Best].Result.TOCCents {
			ch.Best = i
		}
	}
	return ch, nil
}

// SweepConfigurationsPartitioned is SweepConfigurations at partition
// granularity: the base input is lowered once onto the partitioning's unit
// catalog (estimator apportioned by extent heat, profile set rebuilt), and
// the whole grid sweeps over per-unit placements. Each candidate's §5.2
// discrete-sized cost model is rebuilt over the unit catalog inside the
// sweep, so whole-device pricing sees unit-granular class usage. The
// partitioning must be built from base.Cat.
func SweepConfigurationsPartitioned(base core.Input, pt *catalog.Partitioning, grid Grid, opts core.Options) (*Choice, error) {
	ubase, err := base.Partitioned(pt)
	if err != nil {
		return nil, err
	}
	return SweepConfigurations(ubase, grid, opts)
}

// InfeasibilityReason explains why a candidate produced no feasible layout:
// the capacity cases (database larger than the box; one object larger than
// every class) are distinguished from the SLA case, so Choice.Best == -1 is
// diagnosable per candidate instead of a bare "nothing fit".
func InfeasibilityReason(cat *catalog.Catalog, box *device.Box, opts core.Options) string {
	if r := CapacityInfeasibility(cat, box); r != "" {
		return r
	}
	return fmt.Sprintf("SLA unmet: no evaluated layout satisfied the relative SLA %g within capacity — relax the SLA or add faster/larger classes", opts.RelativeSLA)
}

// CapacityInfeasibility reports the structural capacity problems a box has
// with a catalog — the database outsizing the box, or a single object no
// class can hold — and "" when capacity fits. It is the capacity-only
// slice of InfeasibilityReason, for callers (serve's error bodies) that
// must not imply anything about SLA evaluation.
func CapacityInfeasibility(cat *catalog.Catalog, box *device.Box) string {
	need := cat.TotalSize()
	have := box.TotalCapacityBytes()
	if need >= have {
		return fmt.Sprintf("over capacity: database needs %.2f GB, box holds %.2f GB", float64(need)/1e9, float64(have)/1e9)
	}
	var maxDev int64
	for _, d := range box.Devices {
		if d.CapacityBytes > maxDev {
			maxDev = d.CapacityBytes
		}
	}
	for _, o := range cat.Objects() {
		if o.SizeBytes >= maxDev {
			return fmt.Sprintf("over capacity: object %q (%.2f GB) exceeds every class in the box (largest %.2f GB)",
				o.Name, float64(o.SizeBytes)/1e9, float64(maxDev)/1e9)
		}
	}
	return ""
}
