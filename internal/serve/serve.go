// Package serve exposes the DOT advisor as a long-lived HTTP/JSON service —
// the shape an HTAP control plane consumes placement decisions in: not one
// offline run, but a stream of advise/provision requests against changing
// workload profiles (cf. PAPERS.md on continuous placement).
//
// Endpoints:
//
//	POST /advise     — single-workload DOT on a fixed box (§3)
//	POST /provision  — full configuration sweep over a device grid (§5)
//	GET  /healthz    — liveness + counters
//
// The server bounds concurrent optimization requests (excess requests get
// 503 immediately rather than queuing unboundedly), applies a per-request
// timeout (504), and answers repeated provisioning sweeps from an LRU keyed
// by (workload fingerprint, grid, SLA).
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"dotprov/internal/core"
	"dotprov/internal/provision"
	"dotprov/internal/search"
)

// Config tunes the server. Zero values select the documented defaults.
type Config struct {
	// MaxConcurrent bounds simultaneous optimization requests; further
	// requests are rejected with 503 (default 4).
	MaxConcurrent int
	// RequestTimeout caps one optimization's wall time; on expiry the
	// request gets 504 and the abandoned search finishes (and releases its
	// concurrency slot) in the background (default 30s).
	RequestTimeout time.Duration
	// CacheEntries sizes the sweep-result LRU (default 64).
	CacheEntries int
	// Workers is the layout-search worker budget, shared by ALL in-flight
	// requests (default: number of CPUs) — MaxConcurrent requests cannot
	// oversubscribe the machine MaxConcurrent-fold. Results are identical
	// at any width.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	return c
}

// Server is the advisor service. Create one with New; it is safe for
// concurrent use.
type Server struct {
	cfg Config
	sem chan struct{}
	// budget is the layout-search worker budget shared across every
	// request's engines, so concurrent requests split — not multiply — the
	// configured evaluation width.
	budget   *search.Budget
	cache    *lruCache
	start    time.Time
	served   atomic.Int64
	hits     atomic.Int64
	rejected atomic.Int64
}

// New builds a server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:    cfg,
		sem:    make(chan struct{}, cfg.MaxConcurrent),
		budget: search.NewBudget(cfg.Workers),
		cache:  newLRU(cfg.CacheEntries),
		start:  time.Now(),
	}
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /advise", s.bounded(s.handleAdvise))
	mux.HandleFunc("POST /provision", s.bounded(s.handleProvision))
	return mux
}

// maxBodyBytes caps request bodies; profiles are per-object aggregates, so
// even wide schemas fit comfortably.
const maxBodyBytes = 8 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

// bounded wraps an optimization handler with the concurrency gate and the
// per-request timeout. The request body is read on the request goroutine
// (net/http forbids touching it once ServeHTTP returns); the optimization
// then runs on a separate goroutine that owns the concurrency slot until it
// finishes, so an abandoned (timed-out) search cannot stack unbounded work
// behind the gate. Handler panics are contained to a 500 for that request.
func (s *Server) bounded(fn func(body []byte) (any, int, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Read the body BEFORE taking a concurrency slot: a client trickling
		// its upload must not park an optimization slot (the server's
		// ReadTimeout bounds the upload itself).
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("reading request body: %v", err)})
			return
		}
		select {
		case s.sem <- struct{}{}:
		default:
			s.rejected.Add(1)
			writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server saturated: too many concurrent optimizations"})
			return
		}
		s.served.Add(1)
		type outcome struct {
			v      any
			status int
			err    error
		}
		done := make(chan outcome, 1)
		go func() {
			defer func() { <-s.sem }()
			defer func() {
				if p := recover(); p != nil {
					done <- outcome{status: http.StatusInternalServerError, err: fmt.Errorf("internal error: %v", p)}
				}
			}()
			v, status, err := fn(body)
			done <- outcome{v: v, status: status, err: err}
		}()
		timeout := time.NewTimer(s.cfg.RequestTimeout)
		defer timeout.Stop()
		select {
		case out := <-done:
			if out.err != nil {
				writeJSON(w, out.status, apiError{Error: out.err.Error()})
				return
			}
			writeJSON(w, out.status, out.v)
		case <-timeout.C:
			writeJSON(w, http.StatusGatewayTimeout, apiError{Error: fmt.Sprintf("optimization exceeded the %v request timeout", s.cfg.RequestTimeout)})
		case <-r.Context().Done():
			// Client went away; nothing useful to write.
		}
	}
}

func decode[T any](body []byte) (T, error) {
	var v T
	if err := json.Unmarshal(body, &v); err != nil {
		return v, fmt.Errorf("bad request body: %w", err)
	}
	return v, nil
}

func validSLA(sla float64) error {
	if sla <= 0 || sla > 1 {
		return fmt.Errorf("sla must be in (0, 1], got %g", sla)
	}
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
		Served:        s.served.Load(),
		CacheHits:     s.hits.Load(),
		Rejected:      s.rejected.Load(),
	})
}

func (s *Server) handleAdvise(body []byte) (any, int, error) {
	req, err := decode[AdviseRequest](body)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if err := validSLA(req.SLA); err != nil {
		return nil, http.StatusBadRequest, err
	}
	box, err := parseBox(req)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	comp, err := compileWorkload(req.Workload)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	in, err := comp.input(box, s.budget)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if req.Alpha != 0 {
		model, compactModel, err := provision.DiscreteCostModels(comp.cat, box, req.Alpha)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		in.LayoutCost = model
		in.LayoutCostCompact = compactModel
	}
	opts := core.Options{RelativeSLA: req.SLA}
	res, err := core.OptimizeBest(in, opts)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	resp := AdviseResponse{
		Feasible:       res.Feasible,
		TOCCents:       res.TOCCents,
		Evaluated:      res.Evaluated,
		EstimatorCalls: res.EstimatorCalls,
		PlanMillis:     float64(res.PlanTime) / float64(time.Millisecond),
	}
	if res.Feasible {
		resp.Layout = comp.renderLayout(res.Layout)
		resp.ElapsedMillis = float64(res.Metrics.Elapsed) / float64(time.Millisecond)
		resp.ThroughputPerHour = res.Metrics.Throughput
	} else {
		resp.Failure = provision.InfeasibilityReason(comp.cat, box, opts)
	}
	return resp, http.StatusOK, nil
}

func (s *Server) handleProvision(body []byte) (any, int, error) {
	req, err := decode[ProvisionRequest](body)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if err := validSLA(req.SLA); err != nil {
		return nil, http.StatusBadRequest, err
	}
	grid, err := parseGrid(req.Grid)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	comp, err := compileWorkload(req.Workload)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	key := fmt.Sprintf("%s|%s|%g", comp.fingerprint(), grid.Key(), req.SLA)
	if v, ok := s.cache.get(key); ok {
		s.hits.Add(1)
		resp := *v.(*ProvisionResponse)
		resp.Cached = true
		return resp, http.StatusOK, nil
	}
	base, err := comp.input(grid.Universe(), s.budget)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	opts := core.Options{RelativeSLA: req.SLA}
	choice, err := provision.SweepConfigurations(base, grid, opts)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	resp := &ProvisionResponse{
		Best:           choice.Best,
		Evaluated:      choice.Evaluated,
		EstimatorCalls: choice.EstimatorCalls,
	}
	for _, cr := range choice.Results {
		out := CandidateOut{
			Name:     cr.Name,
			Feasible: cr.Result.Feasible,
			Failure:  cr.Failure,
			TOCCents: cr.Result.TOCCents,
		}
		if cr.Spec != nil {
			out.Alpha = cr.Spec.Alpha
		}
		if cr.Result.Feasible {
			out.Layout = comp.renderLayout(cr.Result.Layout)
		}
		resp.Candidates = append(resp.Candidates, out)
	}
	s.cache.put(key, resp)
	return *resp, http.StatusOK, nil
}
