// Package device models the five storage classes evaluated in the paper
// (Table 1 and Table 2): a hard disk drive, a two-disk HDD RAID 0, a low-end
// MLC SATA SSD, a two-drive L-SSD RAID 0, and a high-end PCIe SLC SSD.
//
// The paper measured per-I/O service times end-to-end from inside PostgreSQL
// under 1 and 300 concurrent DB threads (paper §3.5.1) and derived storage
// prices in cent/GB/hour by amortising the purchase cost over 36 months and
// charging $0.07/kWh for power (paper §2.1, §4.1). We do not have the
// physical drives, so this package carries the paper's published calibration
// numbers; the simulator charges these times against a virtual clock. Every
// ratio the evaluation depends on (RAID 0 sequential bandwidth per dollar,
// the H-SSD's 100x random-read advantage, the L-SSD's poor random writes) is
// therefore reproduced exactly.
package device

import (
	"fmt"
	"math"
	"time"
)

// Class identifies one of the storage classes.
type Class uint8

// The five storage classes of Table 1, cheapest first: single HDD,
// two-disk HDD RAID 0, low-end MLC SATA SSD, two-drive L-SSD RAID 0, and
// the high-end PCIe SLC H-SSD.
const (
	HDD Class = iota
	HDDRAID0
	LSSD
	LSSDRAID0
	HSSD
	numClasses
)

// AllClasses lists every storage class in Table 1 order (cheapest first).
var AllClasses = []Class{HDD, HDDRAID0, LSSD, LSSDRAID0, HSSD}

// NumClasses is the number of storage classes. Class values are dense in
// [0, NumClasses), so they can index fixed-width tables (the compiled cost
// model's per-(object, class) time tables and per-class byte accumulators).
const NumClasses = int(numClasses)

// ValidClass reports whether c is one of the defined storage classes.
func ValidClass(c Class) bool { return c < numClasses }

// String renders the class under its Table 1 name (e.g. "H-SSD").
func (c Class) String() string {
	switch c {
	case HDD:
		return "HDD"
	case HDDRAID0:
		return "HDD RAID 0"
	case LSSD:
		return "L-SSD"
	case LSSDRAID0:
		return "L-SSD RAID 0"
	case HSSD:
		return "H-SSD"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// ParseClass maps a user-facing name to a Class.
func ParseClass(s string) (Class, error) {
	for _, c := range AllClasses {
		if c.String() == s {
			return c, nil
		}
	}
	switch s {
	case "hdd":
		return HDD, nil
	case "hdd-raid0":
		return HDDRAID0, nil
	case "lssd":
		return LSSD, nil
	case "lssd-raid0":
		return LSSDRAID0, nil
	case "hssd":
		return HSSD, nil
	}
	return 0, fmt.Errorf("device: unknown storage class %q", s)
}

// IOType enumerates the four access patterns the paper's cost model uses
// (set R in §3.3). Reads are charged per page I/O; writes per row, matching
// the units of Table 1.
type IOType uint8

// The four access patterns; NumIOTypes sizes dense per-type tables.
const (
	SeqRead IOType = iota
	RandRead
	SeqWrite
	RandWrite
	NumIOTypes = 4
)

// AllIOTypes lists the I/O types in Table 1 order.
var AllIOTypes = []IOType{SeqRead, RandRead, SeqWrite, RandWrite}

// String renders the I/O type under its Table 1 abbreviation (SR, RR,
// SW, RW).
func (t IOType) String() string {
	switch t {
	case SeqRead:
		return "SR"
	case RandRead:
		return "RR"
	case SeqWrite:
		return "SW"
	case RandWrite:
		return "RW"
	default:
		return fmt.Sprintf("IOType(%d)", uint8(t))
	}
}

// IsRead reports whether the I/O type is a read.
func (t IOType) IsRead() bool { return t == SeqRead || t == RandRead }

// Spec carries the hardware data of Table 2 plus the RAID composition used
// to build the two RAID 0 classes (two identical drives behind a Dell
// SAS6/iR controller: $110, 8.25 W, per paper §4.1).
type Spec struct {
	Brand       string
	Model       string
	FlashType   string // "MLC", "SLC" or "" for spinning disks
	CapacityGB  float64
	Interface   string
	RPM         int // 0 for SSDs
	CacheMB     int
	PurchaseUSD float64 // per drive
	PowerWatts  float64 // per drive, average of read/write
	Drives      int     // 1, or 2 for RAID 0
	RAIDCtrl    bool    // whether the RAID controller cost/power applies
}

// Economic constants from the paper (§2.1, §4.1).
const (
	amortizationMonths = 36
	hoursPerMonth      = 730
	energyUSDPerKWh    = 0.07
	raidCtrlUSD        = 110
	raidCtrlWatts      = 8.25
)

// TotalPurchaseUSD is the purchase cost of the whole storage class,
// including the RAID controller when present.
func (s Spec) TotalPurchaseUSD() float64 {
	c := s.PurchaseUSD * float64(s.Drives)
	if s.RAIDCtrl {
		c += raidCtrlUSD
	}
	return c
}

// TotalPowerWatts is the run-time power draw of the whole storage class.
func (s Spec) TotalPowerWatts() float64 {
	w := s.PowerWatts * float64(s.Drives)
	if s.RAIDCtrl {
		w += raidCtrlWatts
	}
	return w
}

// TotalCapacityGB is the usable capacity (RAID 0 stripes both drives).
func (s Spec) TotalCapacityGB() float64 {
	return s.CapacityGB * float64(s.Drives)
}

// DerivePriceCentsPerGBHour reproduces the paper's storage price
// calculation: amortised purchase cost over 36 months plus energy at
// $0.07/kWh, divided by usable capacity. The results match Table 1's second
// row to within rounding (see the package tests).
func (s Spec) DerivePriceCentsPerGBHour() float64 {
	hours := float64(amortizationMonths * hoursPerMonth)
	purchaseCentsPerHour := s.TotalPurchaseUSD() * 100 / hours
	energyCentsPerHour := s.TotalPowerWatts() / 1000 * energyUSDPerKWh * 100
	return (purchaseCentsPerHour + energyCentsPerHour) / s.TotalCapacityGB()
}

// calib holds the measured per-operation service time (milliseconds) at the
// two calibration points of Table 1: 1 and 300 concurrent DB threads.
type calib struct {
	c1, c300 float64
}

// Device is one provisioned storage class instance.
type Device struct {
	Class         Class
	Spec          Spec
	CapacityBytes int64   // usable capacity; experiments may lower this
	PriceCents    float64 // cent/GB/hour

	svc [NumIOTypes]calib
}

// table1 carries the measured service times (ms per I/O for reads, ms per
// row for writes) exactly as published in Table 1 of the paper. The first
// number in each pair is the single-thread measurement, the second the
// 300-thread measurement.
var table1 = map[Class][NumIOTypes]calib{
	HDD:       {SeqRead: {0.072, 0.174}, RandRead: {13.32, 8.903}, SeqWrite: {0.012, 0.039}, RandWrite: {10.15, 8.124}},
	HDDRAID0:  {SeqRead: {0.049, 0.096}, RandRead: {12.19, 2.712}, SeqWrite: {0.011, 0.034}, RandWrite: {11.55, 3.770}},
	LSSD:      {SeqRead: {0.036, 0.053}, RandRead: {1.759, 1.468}, SeqWrite: {0.020, 0.341}, RandWrite: {62.01, 37.45}},
	LSSDRAID0: {SeqRead: {0.021, 0.037}, RandRead: {1.570, 0.826}, SeqWrite: {0.013, 0.082}, RandWrite: {21.14, 17.71}},
	HSSD:      {SeqRead: {0.016, 0.013}, RandRead: {0.091, 0.024}, SeqWrite: {0.009, 0.025}, RandWrite: {0.928, 0.986}},
}

// Table1PriceCents is the published storage price (cent/GB/hour) from
// Table 1, used to cross-check the derivation from Table 2.
var Table1PriceCents = map[Class]float64{
	HDD:       3.47e-4,
	HDDRAID0:  8.19e-4,
	LSSD:      7.65e-3,
	LSSDRAID0: 9.51e-3,
	HSSD:      1.69e-1,
}

// specs carries Table 2 plus the RAID compositions of §4.1.
var specs = map[Class]Spec{
	HDD: {Brand: "WD", Model: "Caviar Black", CapacityGB: 500,
		Interface: "SATA II", RPM: 7200, CacheMB: 32, PurchaseUSD: 34, PowerWatts: 8.3, Drives: 1},
	HDDRAID0: {Brand: "WD", Model: "Caviar Black x2 RAID 0", CapacityGB: 500,
		Interface: "SATA II", RPM: 7200, CacheMB: 32, PurchaseUSD: 34, PowerWatts: 8.3, Drives: 2, RAIDCtrl: true},
	LSSD: {Brand: "Imation", Model: "M-Class 2.5\"", FlashType: "MLC", CapacityGB: 128,
		Interface: "SATA II", CacheMB: 64, PurchaseUSD: 253, PowerWatts: 2.5, Drives: 1},
	LSSDRAID0: {Brand: "Imation", Model: "M-Class x2 RAID 0", FlashType: "MLC", CapacityGB: 128,
		Interface: "SATA II", CacheMB: 64, PurchaseUSD: 253, PowerWatts: 2.5, Drives: 2, RAIDCtrl: true},
	HSSD: {Brand: "Fusion IO", Model: "ioDrive", FlashType: "SLC", CapacityGB: 80,
		Interface: "PCI-Express", PurchaseUSD: 3550, PowerWatts: 10.5, Drives: 1},
}

// New builds a device of the given class with the paper's calibration. The
// price is the value derived from Table 2 (which reproduces Table 1).
func New(c Class) *Device {
	spec, ok := specs[c]
	if !ok {
		panic(fmt.Sprintf("device: no spec for class %v", c))
	}
	d := &Device{
		Class:         c,
		Spec:          spec,
		CapacityBytes: int64(spec.TotalCapacityGB() * 1e9),
		PriceCents:    spec.DerivePriceCentsPerGBHour(),
		svc:           table1[c],
	}
	return d
}

// NewScaled builds a device of the given class provisioned with `units`
// physical units (paper §5.2: configurations buy devices in whole units).
// Usable capacity scales with the unit count; the per-GB price and the
// calibrated service times are those of a single unit — the paper's model
// stripes capacity but keeps per-I/O times per class.
func NewScaled(c Class, units int) *Device {
	if units < 1 {
		panic(fmt.Sprintf("device: NewScaled(%v, %d): units must be >= 1", c, units))
	}
	d := New(c)
	d.CapacityBytes *= int64(units)
	return d
}

// Calibration is one I/O type's measured service time in milliseconds at
// the two calibration points of Table 1: 1 and 300 concurrent DB threads.
// The paper measures these end-to-end per deployment (§3.5.1); NewCustom
// lets experiments carry measurements for hardware outside Table 2.
type Calibration struct {
	MS1, MS300 float64
}

// NewCustom builds a device of class c from a deployment-specific spec and
// service-time calibration instead of the paper's published Table 1/2
// numbers. Price and capacity derive from the spec exactly as New derives
// them, so custom devices obey the same economics (§2.1, §4.1).
//
// The published five classes happen to be totally ordered on read latency —
// the H-SSD is fastest at both read patterns at every concurrency — which
// makes best-replica read routing degenerate: no class set ever reads
// faster than its fastest member alone. Hardware that breaks that order
// (e.g. a wide HDD stripe that outruns SATA SSDs on streaming reads) is
// exactly where replicated placement pays, and NewCustom is how such a
// device enters a box.
func NewCustom(c Class, spec Spec, svc [NumIOTypes]Calibration) *Device {
	if !ValidClass(c) {
		panic(fmt.Sprintf("device: NewCustom with invalid class %v", c))
	}
	d := &Device{
		Class:         c,
		Spec:          spec,
		CapacityBytes: int64(spec.TotalCapacityGB() * 1e9),
		PriceCents:    spec.DerivePriceCentsPerGBHour(),
	}
	for t, cal := range svc {
		d.svc[t] = calib{c1: cal.MS1, c300: cal.MS300}
	}
	return d
}

// UnitCapacityBytes returns the capacity of ONE physical unit of the class,
// derived from the hardware spec. It is independent of SetCapacity overrides
// and of unit scaling, so discrete cost models can price whole devices even
// on scaled or capacity-constrained boxes.
func (d *Device) UnitCapacityBytes() int64 {
	if b := int64(d.Spec.TotalCapacityGB() * 1e9); b > 0 {
		return b
	}
	return d.CapacityBytes
}

// ServiceTime returns the per-operation service time for the given I/O type
// under the given degree of concurrency (number of concurrent DB threads,
// paper §3.5). Between the two calibration points the time is interpolated
// linearly in log(concurrency), clamped outside [1, 300]. Reads are per page
// I/O; writes are per row, matching Table 1's units.
func (d *Device) ServiceTime(t IOType, concurrency int) time.Duration {
	cal := d.svc[t]
	var ms float64
	switch {
	case concurrency <= 1:
		ms = cal.c1
	case concurrency >= 300:
		ms = cal.c300
	default:
		frac := math.Log(float64(concurrency)) / math.Log(300)
		ms = cal.c1 + (cal.c300-cal.c1)*frac
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// ServiceTimeMs exposes the raw calibration in milliseconds, mainly for
// reporting Table 1.
func (d *Device) ServiceTimeMs(t IOType, concurrency int) float64 {
	return float64(d.ServiceTime(t, concurrency)) / float64(time.Millisecond)
}

// CostCents returns the storage cost, in cents, of holding `bytes` bytes on
// this device for duration dur: price(cent/GB/hour) x GB x hours.
func (d *Device) CostCents(bytes int64, dur time.Duration) float64 {
	gb := float64(bytes) / 1e9
	hours := dur.Hours()
	return d.PriceCents * gb * hours
}

// String identifies the device by class name.
func (d *Device) String() string { return d.Class.String() }
