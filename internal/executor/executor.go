// Package executor runs physical plans against the engine's heap files and
// B+-trees. Execution is real — tuples are decoded from slotted pages,
// hash tables are built, index probes descend actual trees — while device
// time is charged through the buffer pool to the storage class holding each
// object, and CPU time is charged with the same constants the optimizer
// uses for its estimates (plan.CPUPerTuple and friends), so estimated and
// measured times stay mutually consistent.
//
// The entry point is Run: it walks the plan tree (sequential scan, index
// scan/probe, hash join, indexed nested-loop join, aggregation) pushing
// tuples through a callback, charging every page touch to the worker's
// accountant via the shared buffer pool. The executor holds no state of
// its own between runs; all device accounting flows through the
// iosim.Accountant it is handed, which is what makes profiles captured
// during execution exact (the online collector taps that same stream).
package executor

import (
	"fmt"
	"time"

	"dotprov/internal/btree"
	"dotprov/internal/bufferpool"
	"dotprov/internal/catalog"
	"dotprov/internal/iosim"
	"dotprov/internal/pagestore"
	"dotprov/internal/plan"
	"dotprov/internal/types"
)

// Storage is what the executor needs from the engine.
type Storage interface {
	Heap(id catalog.ObjectID) *pagestore.HeapFile
	Tree(id catalog.ObjectID) *btree.Tree
	TableSchema(name string) *types.Schema
	Pool() *bufferpool.Pool
}

// MaxResultTuples caps how many output tuples Run materialises in the
// Result (counting always continues past the cap).
const MaxResultTuples = 10000

// Result summarises a query execution.
type Result struct {
	Rows   int64
	Tuples []types.Tuple // first MaxResultTuples output rows
}

// Run executes a plan on behalf of one worker, charging I/O and CPU to the
// accountant, and returns the result.
func Run(st Storage, acct *iosim.Accountant, p *plan.Plan) (*Result, error) {
	e := &exec{st: st, acct: acct}
	res := &Result{}
	err := e.run(p.Root, func(t types.Tuple) bool {
		res.Rows++
		if len(res.Tuples) < MaxResultTuples {
			res.Tuples = append(res.Tuples, t.Clone())
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

type exec struct {
	st   Storage
	acct *iosim.Accountant
}

// run pushes the node's output tuples into emit; emit returning false stops
// execution early (limit).
func (e *exec) run(n plan.Node, emit func(types.Tuple) bool) error {
	switch t := n.(type) {
	case *plan.SeqScan:
		return e.seqScan(t, emit)
	case *plan.IndexScan:
		return e.indexScan(t, emit)
	case *plan.Join:
		if t.Algo == plan.HashJoin {
			return e.hashJoin(t, emit)
		}
		return e.indexNLJoin(t, emit)
	case *plan.AggNode:
		return e.aggregate(t, emit)
	case *plan.LimitNode:
		left := t.N
		err := e.run(t.Input, func(tu types.Tuple) bool {
			if left <= 0 {
				return false
			}
			left--
			if !emit(tu) {
				return false
			}
			return left > 0
		})
		return err
	default:
		return fmt.Errorf("executor: unknown node %T", n)
	}
}

// predIdx binds a predicate list to column positions in a schema.
func predIdx(sch *types.Schema, preds []plan.Pred) ([]int, error) {
	out := make([]int, len(preds))
	for i, p := range preds {
		idx := sch.ColIndex(p.Column)
		if idx < 0 {
			return nil, fmt.Errorf("executor: predicate column %s.%s not in schema", p.Table, p.Column)
		}
		out[i] = idx
	}
	return out, nil
}

func matchAll(tu types.Tuple, preds []plan.Pred, idx []int) bool {
	for i, p := range preds {
		if !p.Matches(tu[idx[i]]) {
			return false
		}
	}
	return true
}

func (e *exec) seqScan(s *plan.SeqScan, emit func(types.Tuple) bool) error {
	sch := e.st.TableSchema(s.Table)
	if sch == nil {
		return fmt.Errorf("executor: no schema for table %q", s.Table)
	}
	heap := e.st.Heap(s.TableID)
	if heap == nil {
		return fmt.Errorf("executor: no heap for table %q", s.Table)
	}
	idx, err := predIdx(sch, s.Filter)
	if err != nil {
		return err
	}
	pool := e.st.Pool()
	var decodeErr error
	n := len(sch.Columns)
	perRow := plan.CPUTupleTime + time.Duration(len(s.Filter))*plan.CPUPredTime
	scanErr := heap.Scan(pool, e.acct, func(_ pagestore.RID, rec []byte) bool {
		tu, _, err := types.DecodeTuple(rec, n)
		if err != nil {
			decodeErr = err
			return false
		}
		e.acct.ChargeCPU(perRow)
		if !matchAll(tu, s.Filter, idx) {
			return true
		}
		return emit(tu)
	})
	if decodeErr != nil {
		return decodeErr
	}
	return scanErr
}

// rangeBounds converts an index-scan predicate into B+-tree range bounds.
func rangeBounds(s *plan.IndexScan) (lo, hi []byte, loIncl, hiIncl bool) {
	key := func(v types.Value) []byte { return types.EncodeKey(nil, v) }
	switch s.Op {
	case plan.Eq:
		return key(s.Lo), key(s.Lo), true, true
	case plan.Lt:
		return nil, key(s.Lo), true, false
	case plan.Le:
		return nil, key(s.Lo), true, true
	case plan.Gt:
		return key(s.Lo), nil, false, true
	case plan.Ge:
		return key(s.Lo), nil, true, true
	case plan.Between:
		return key(s.Lo), key(s.Hi), true, true
	default:
		return nil, nil, true, true
	}
}

func (e *exec) indexScan(s *plan.IndexScan, emit func(types.Tuple) bool) error {
	sch := e.st.TableSchema(s.Table)
	if sch == nil {
		return fmt.Errorf("executor: no schema for table %q", s.Table)
	}
	heap := e.st.Heap(s.TableID)
	tree := e.st.Tree(s.IndexID)
	if heap == nil || tree == nil {
		return fmt.Errorf("executor: missing storage for index scan on %q", s.Table)
	}
	idx, err := predIdx(sch, s.Residual)
	if err != nil {
		return err
	}
	pool := e.st.Pool()
	lo, hi, loIncl, hiIncl := rangeBounds(s)
	var innerErr error
	n := len(sch.Columns)
	tree.Range(pool, e.acct, lo, hi, loIncl, hiIncl, func(_ []byte, rid pagestore.RID) bool {
		e.acct.ChargeCPU(plan.CPUIndexTime)
		rec, err := heap.Fetch(pool, e.acct, rid)
		if err != nil {
			innerErr = err
			return false
		}
		tu, _, err := types.DecodeTuple(rec, n)
		if err != nil {
			innerErr = err
			return false
		}
		e.acct.ChargeCPU(plan.CPUTupleTime + time.Duration(len(s.Residual))*plan.CPUPredTime)
		if !matchAll(tu, s.Residual, idx) {
			return true
		}
		return emit(tu)
	})
	return innerErr
}

// colPos finds a qualified column in a node's output schema.
func colPos(sch []plan.ColRef, c plan.ColRef) (int, error) {
	for i, s := range sch {
		if s == c {
			return i, nil
		}
	}
	return 0, fmt.Errorf("executor: column %v not in schema %v", c, sch)
}

func (e *exec) hashJoin(j *plan.Join, emit func(types.Tuple) bool) error {
	innerPos, err := colPos(j.Inner.Schema(), j.InnerCol)
	if err != nil {
		return err
	}
	outerPos, err := colPos(j.Outer.Schema(), j.OuterCol)
	if err != nil {
		return err
	}
	// Build phase: hash the inner input in memory.
	table := make(map[string][]types.Tuple)
	var keyBuf []byte
	err = e.run(j.Inner, func(tu types.Tuple) bool {
		e.acct.ChargeCPU(plan.CPUHashTime)
		keyBuf = types.EncodeKey(keyBuf[:0], tu[innerPos])
		table[string(keyBuf)] = append(table[string(keyBuf)], tu.Clone())
		return true
	})
	if err != nil {
		return err
	}
	// Probe phase.
	stopped := false
	err = e.run(j.Outer, func(outer types.Tuple) bool {
		e.acct.ChargeCPU(plan.CPUHashTime)
		keyBuf = types.EncodeKey(keyBuf[:0], outer[outerPos])
		for _, inner := range table[string(keyBuf)] {
			e.acct.ChargeCPU(plan.CPUTupleTime)
			joined := make(types.Tuple, 0, len(outer)+len(inner))
			joined = append(joined, outer...)
			joined = append(joined, inner...)
			if !emit(joined) {
				stopped = true
				return false
			}
		}
		return true
	})
	_ = stopped
	return err
}

func (e *exec) indexNLJoin(j *plan.Join, emit func(types.Tuple) bool) error {
	outerPos, err := colPos(j.Outer.Schema(), j.OuterCol)
	if err != nil {
		return err
	}
	sch := e.st.TableSchema(j.InnerTable)
	if sch == nil {
		return fmt.Errorf("executor: no schema for inner table %q", j.InnerTable)
	}
	heap := e.st.Heap(j.InnerTableID)
	tree := e.st.Tree(j.InnerIndexID)
	if heap == nil || tree == nil {
		return fmt.Errorf("executor: missing storage for INLJ inner %q", j.InnerTable)
	}
	idx, err := predIdx(sch, j.InnerResidual)
	if err != nil {
		return err
	}
	pool := e.st.Pool()
	n := len(sch.Columns)
	var keyBuf []byte
	var innerErr error
	err = e.run(j.Outer, func(outer types.Tuple) bool {
		e.acct.ChargeCPU(plan.CPUIndexTime)
		keyBuf = types.EncodeKey(keyBuf[:0], outer[outerPos])
		keep := true
		tree.Range(pool, e.acct, keyBuf, keyBuf, true, true, func(_ []byte, rid pagestore.RID) bool {
			rec, err := heap.Fetch(pool, e.acct, rid)
			if err != nil {
				innerErr = err
				return false
			}
			tu, _, err := types.DecodeTuple(rec, n)
			if err != nil {
				innerErr = err
				return false
			}
			e.acct.ChargeCPU(plan.CPUTupleTime + time.Duration(len(j.InnerResidual))*plan.CPUPredTime)
			if !matchAll(tu, j.InnerResidual, idx) {
				return true
			}
			joined := make(types.Tuple, 0, len(outer)+len(tu))
			joined = append(joined, outer...)
			joined = append(joined, tu...)
			if !emit(joined) {
				keep = false
				return false
			}
			return true
		})
		return keep && innerErr == nil
	})
	if innerErr != nil {
		return innerErr
	}
	return err
}
