// Replicated online advising: the manager's class-set mode. With
// Config.Replication enabled the deployed layout is a catalog.SetLayout —
// each placement unit lives on a set of storage classes, reads route to the
// best member per access pattern and writes land on every member — and the
// whole loop generalizes accordingly: drift is judged at replica-routed
// service times, re-advises run the seeded replicated incremental search,
// and migration pricing charges per copy added (sequential read off the
// fastest existing member plus a sequential write onto the destination)
// while dropping a copy is free (deleting bytes moves nothing). With every
// set a singleton the arithmetic reduces bit for bit to the single-class
// loop.
package online

import (
	"fmt"
	"math"
	"sort"
	"time"

	"dotprov/internal/catalog"
	"dotprov/internal/core"
	"dotprov/internal/device"
	"dotprov/internal/pagestore"
	"dotprov/internal/search"
	"dotprov/internal/workload"
)

// setMoveTime prices transitioning one object of size bytes between replica
// sets. Each copy added is read sequentially off the fastest existing
// member (a brand-new object has no source and is charged writes only) and
// rewritten at its destination's sequential-write rate; dropped copies cost
// nothing. On singleton-to-singleton transitions this is exactly moveTime.
func (m MigrationModel) setMoveTime(size int64, from, to device.ClassSet) time.Duration {
	added := to &^ from
	if size <= 0 || added == 0 {
		return 0
	}
	pages := (size + pagestore.PageSize - 1) / pagestore.PageSize
	var src time.Duration
	for _, c := range from.Classes() {
		if d := m.Box.Device(c); d != nil {
			t := d.ServiceTime(device.SeqRead, m.conc())
			if src == 0 || t < src {
				src = t
			}
		}
	}
	var total time.Duration
	for _, c := range added.Classes() {
		d := m.Box.Device(c)
		if d == nil {
			continue
		}
		total += time.Duration(pages) * (src + d.ServiceTime(device.SeqWrite, m.conc()))
	}
	return total
}

// PlanSet diffs two replicated layouts and prices the transition, the
// class-set analog of Plan. Bytes counts the bytes rewritten — object size
// times copies added — so a decision that only drops copies reports moves
// with zero bytes and zero time.
func (m MigrationModel) PlanSet(from, to catalog.SetLayout) MigrationPlan {
	var p MigrationPlan
	for _, o := range m.Cat.Objects() {
		src, okFrom := from[o.ID]
		dst, okTo := to[o.ID]
		if !okFrom || !okTo || src == dst {
			continue
		}
		p.Moves = append(p.Moves, workload.ObjectMove{Obj: o.ID, From: device.Class(src), To: device.Class(dst)})
		if added := dst &^ src; added != 0 {
			p.Bytes += o.SizeBytes * int64(added.Count())
		}
		p.Time += m.setMoveTime(o.SizeBytes, src, dst)
	}
	return p
}

// GateSet builds the admission hook for core.OptimizeReplicatedIncremental,
// the class-set analog of Gate: a candidate is admitted only when the time
// to materialize its new copies off the seed layout fits within frac of the
// SLA headroom. Candidate placement slots carry class-set masks, so the
// compiled-path byte diff compares masks against the seed's compact set
// form.
func (m MigrationModel) GateSet(seed catalog.SetLayout, frac float64) func(search.Eval, workload.Constraints) bool {
	if frac <= 0 {
		frac = DefaultHeadroomFraction
	}
	sizes := m.Cat.DenseSizeBytes()
	seedCompact, compactOK := catalog.CompactFromSetLayout(m.Cat, seed)
	return func(ev search.Eval, cons workload.Constraints) bool {
		var mig time.Duration
		if compactOK && !ev.Compact.IsZero() {
			sb, cb := seedCompact.Bytes(), ev.Compact.Bytes()
			for i := 0; i < len(cb) && i < len(sb); i++ {
				if sb[i] != cb[i] && i < len(sizes) {
					mig += m.setMoveTime(sizes[i], device.ClassSet(sb[i]), device.ClassSet(cb[i]))
				}
			}
		} else {
			cand := ev.LayoutMap()
			for _, o := range m.Cat.Objects() {
				src, okFrom := seed[o.ID]
				dst, okTo := cand[o.ID]
				if okFrom && okTo && device.ClassSet(dst) != src {
					mig += m.setMoveTime(o.SizeBytes, src, device.ClassSet(dst))
				}
			}
		}
		if mig == 0 {
			return true
		}
		if cons.Baseline.Elapsed <= 0 || cons.Relative <= 0 {
			return true
		}
		allowed := time.Duration(float64(cons.Baseline.Elapsed) / cons.Relative)
		headroom := allowed - ev.Metrics.Elapsed
		if headroom <= 0 {
			return false
		}
		return float64(mig) <= frac*float64(headroom)
	}
}

// setServiceTime resolves one I/O type's service time under a replica set:
// reads route to the fastest member, writes charge every member — the same
// model the set estimators price candidates with.
func (d Detector) setServiceTime(s device.ClassSet, t device.IOType) (time.Duration, error) {
	if !s.Valid() {
		return 0, fmt.Errorf("online: invalid replica set %#x", uint8(s))
	}
	var out time.Duration
	first := true
	for _, c := range s.Classes() {
		dev := d.Box.Device(c)
		if dev == nil {
			return 0, fmt.Errorf("online: replica set %v includes class %v absent from box %q", s, c, d.Box.Name)
		}
		st := dev.ServiceTime(t, d.conc())
		switch {
		case !t.IsRead():
			out += st
		case first || st < out:
			out = st
		}
		first = false
	}
	return out, nil
}

// CompareSet checks the observed window against the reference under a
// replicated deployed layout, the class-set analog of Compare: per-type
// divergence is weighted at replica-routed service times (best member for
// reads, all members for writes) and normalized by the reference profile's
// replica-routed I/O time. On an all-singleton layout it agrees with
// Compare exactly.
func (d Detector) CompareSet(ref, obs Window, layout catalog.SetLayout) (Drift, error) {
	if d.Box == nil {
		return Drift{}, fmt.Errorf("online: Detector requires a Box")
	}
	dr := Drift{
		RefFingerprint: ref.Fingerprint(),
		ObsFingerprint: obs.Fingerprint(),
	}
	if dr.RefFingerprint == dr.ObsFingerprint {
		return dr, nil
	}
	if obs.IOs() < d.minIOs() {
		dr.Thin = true
		return dr, nil
	}
	scale := 1.0
	switch {
	case ref.Elapsed > 0 && obs.Elapsed > 0:
		scale = float64(ref.Elapsed) / float64(obs.Elapsed)
	case ref.IOs() > 0 && obs.IOs() > 0:
		scale = ref.IOs() / obs.IOs()
	}
	var num float64
	seen := make(map[catalog.ObjectID]bool, len(ref.Profile)+len(obs.Profile))
	union := make([]catalog.ObjectID, 0, len(ref.Profile)+len(obs.Profile))
	for id := range ref.Profile {
		if !seen[id] {
			seen[id] = true
			union = append(union, id)
		}
	}
	for id := range obs.Profile {
		if !seen[id] {
			seen[id] = true
			union = append(union, id)
		}
	}
	sort.Slice(union, func(i, j int) bool { return union[i] < union[j] })
	for _, id := range union {
		set, ok := layout[id]
		if !ok {
			return Drift{}, fmt.Errorf("online: object %d observed but not placed by the deployed layout", id)
		}
		rv := ref.Profile.Get(id)
		ov := obs.Profile.Get(id)
		for _, t := range device.AllIOTypes {
			diff := math.Abs(rv[t] - scale*ov[t])
			if diff > 0 {
				st, err := d.setServiceTime(set, t)
				if err != nil {
					return Drift{}, err
				}
				num += diff * float64(st)
			}
		}
	}
	refTime, err := ref.Profile.SetIOTime(maskCarrier(layout), d.Box, d.conc())
	if err != nil {
		return Drift{}, err
	}
	switch {
	case refTime > 0:
		dr.Divergence = num / float64(refTime)
	case num > 0:
		dr.Divergence = math.Inf(1)
	}
	dr.Drifted = dr.Divergence > d.threshold()
	return dr, nil
}

// maskCarrier lifts a replicated layout into the mask-in-Class-slot carrier
// the map-path set pricers consume.
func maskCarrier(sl catalog.SetLayout) catalog.Layout {
	out := make(catalog.Layout, len(sl))
	for id, s := range sl {
		out[id] = device.Class(s)
	}
	return out
}

// singleView collapses an all-singleton replicated layout to its
// single-class form, or returns nil when any unit genuinely replicates.
func singleView(sl catalog.SetLayout) catalog.Layout {
	if l, ok := sl.SingleLayout(); ok {
		return l
	}
	return nil
}

// CurrentSetLayout returns a copy of the deployed replicated layout the
// manager advises from, or nil when the manager runs in single-class mode.
// At partition granularity it is unit-granular.
func (m *Manager) CurrentSetLayout() catalog.SetLayout {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.curSet == nil {
		return nil
	}
	return m.curSet.Clone()
}

// adoptSetLocked installs a feasible replicated layout and re-anchors the
// reference profile. The single-class view tracks the set layout so
// CurrentLayout and the decision log stay meaningful while the deployment
// is singleton-only.
func (m *Manager) adoptSetLocked(sl catalog.SetLayout, agg Window) {
	m.curSet = sl.Clone()
	m.cur = singleView(m.curSet)
	m.ref = agg
	m.hasRef = true
}

// adviseReplicatedLocked is Advise's class-set body: the cold replicated
// optimization off the collected profile. Callers hold m.mu.
func (m *Manager) adviseReplicatedLocked() (*Decision, error) {
	agg, n := m.col.Aggregate(m.aggWindows())
	if n == 0 || agg.IOs() < m.det.minIOs() {
		return nil, fmt.Errorf("online: no usable observations to advise from (windows=%d, ios=%g)", n, agg.IOs())
	}
	agg = m.lower(agg)
	in, err := m.input(agg)
	if err != nil {
		return nil, err
	}
	res, err := core.OptimizeReplicated(in, core.Options{RelativeSLA: m.cfg.SLA})
	if err != nil {
		return nil, err
	}
	dec := &Decision{
		WindowsMerged: n,
		From:          singleView(m.curSet),
		SetFrom:       m.curSet.Clone(),
		Replica:       res,
		Result:        res.Result,
		Feasible:      res.Feasible,
	}
	if !res.Feasible {
		return dec, nil
	}
	dec.Migration = m.mig.PlanSet(m.curSet, res.SetLayout)
	dec.SetTo = res.SetLayout.Clone()
	dec.To = singleView(res.SetLayout)
	dec.ReAdvised = len(dec.Migration.Moves) > 0
	m.adoptSetLocked(res.SetLayout, agg)
	return dec, nil
}

// reAdviseReplicatedLocked is ReAdvise's class-set body: the drift check,
// the seeded replicated incremental search gated on copy-materialization
// time, and the cold replicated fallback. Callers hold m.mu.
func (m *Manager) reAdviseReplicatedLocked(force bool) (*Decision, error) {
	dr, agg, n, err := m.checkLocked()
	if err != nil {
		return nil, err
	}
	dec := &Decision{Drift: dr, WindowsMerged: n, From: singleView(m.curSet), SetFrom: m.curSet.Clone()}
	if n == 0 || dr.Thin || (!force && !dr.Drifted) {
		return dec, nil
	}
	in, err := m.input(agg)
	if err != nil {
		return nil, err
	}
	res, err := core.OptimizeReplicatedIncremental(in, core.ReplicatedIncrementalOptions{
		Options: core.Options{RelativeSLA: m.cfg.SLA},
		Seed:    m.curSet,
		Accept:  m.mig.GateSet(m.curSet, m.cfg.HeadroomFraction),
	})
	if err != nil {
		return nil, err
	}
	dec.Replica, dec.Result, dec.Incremental = res, res.Result, true
	if !res.Feasible {
		cold, err := core.OptimizeReplicated(in, core.Options{RelativeSLA: m.cfg.SLA})
		if err != nil {
			return nil, err
		}
		dec.Replica, dec.Result, dec.Incremental = cold, cold.Result, false
		m.stats.Fallbacks++
		res = cold
	}
	dec.Feasible = res.Feasible
	if !res.Feasible {
		return dec, nil
	}
	dec.Migration = m.mig.PlanSet(m.curSet, res.SetLayout)
	dec.SetTo = res.SetLayout.Clone()
	dec.To = singleView(res.SetLayout)
	dec.ReAdvised = len(dec.Migration.Moves) > 0
	m.adoptSetLocked(res.SetLayout, agg)
	if dec.ReAdvised {
		m.stats.ReAdvises++
	}
	return dec, nil
}
