package iosim

import (
	"math/rand"
	"strings"
	"testing"

	"dotprov/internal/catalog"
	"dotprov/internal/device"
	"dotprov/internal/types"
)

func compiledFixture(t *testing.T) (*catalog.Catalog, Profile) {
	t.Helper()
	cat := catalog.New()
	sch := types.NewSchema(types.Column{Name: "id", Kind: types.KindInt})
	prof := NewProfile()
	for i := 0; i < 5; i++ {
		tab, err := cat.CreateTable(string(rune('a'+i)), sch, nil)
		if err != nil {
			t.Fatal(err)
		}
		cat.SetSize(tab.ID, int64(i+1)*1e9)
		prof.Add(tab.ID, device.SeqRead, float64(1000*(i+1)))
		prof.Add(tab.ID, device.RandRead, float64(10*(i+1)))
		prof.Add(tab.ID, device.RandWrite, float64(3*i))
	}
	return cat, prof
}

// TestCompiledIOTimeMatchesMap: the compiled table must reproduce the
// map-form Profile.IOTime exactly on random layouts and concurrency levels.
func TestCompiledIOTimeMatchesMap(t *testing.T) {
	cat, prof := compiledFixture(t)
	box := device.Box1()
	rng := rand.New(rand.NewSource(5))
	for _, conc := range []int{1, 30, 300} {
		cp := CompileProfile(prof, box, conc, cat.NumObjects())
		for trial := 0; trial < 200; trial++ {
			l := make(catalog.Layout)
			classes := box.Classes()
			for _, o := range cat.Objects() {
				l[o.ID] = classes[rng.Intn(len(classes))]
			}
			want, err := prof.IOTime(l, box, conc)
			if err != nil {
				t.Fatal(err)
			}
			cl, _ := catalog.CompactFromLayout(cat, l)
			got, err := cp.IOTime(cl)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("conc %d trial %d: compiled IOTime %v, map %v", conc, trial, got, want)
			}
		}
	}
}

// TestCompiledDeltaMatchesFull: DeltaIOTime must equal the difference of
// two full evaluations for every object and class pair.
func TestCompiledDeltaMatchesFull(t *testing.T) {
	cat, prof := compiledFixture(t)
	box := device.Box1()
	cp := CompileProfile(prof, box, 1, cat.NumObjects())
	base := catalog.CompactUniform(cat, device.HSSD)
	baseTime, err := cp.IOTime(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range cat.Objects() {
		for _, to := range box.Classes() {
			moved := base.Clone()
			moved.Set(o.ID, to)
			want, err := cp.IOTime(moved)
			if err != nil {
				t.Fatal(err)
			}
			d, err := cp.DeltaIOTime(o.ID, device.HSSD, to)
			if err != nil {
				t.Fatal(err)
			}
			if baseTime+d != want {
				t.Fatalf("obj %d -> %v: delta %v gives %v, full %v", o.ID, to, d, baseTime+d, want)
			}
		}
	}
	// Unprofiled objects move for free.
	if d, err := cp.DeltaIOTime(catalog.ObjectID(200), device.HSSD, device.LSSD); err != nil || d != 0 {
		t.Fatalf("unprofiled delta = %v, %v; want 0, nil", d, err)
	}
}

// TestIOTimeErrorPaths covers the two failure modes of the map and the
// compiled evaluators: a profiled object the layout does not place, and a
// profiled object placed on a class the box does not carry.
func TestIOTimeErrorPaths(t *testing.T) {
	cat, prof := compiledFixture(t)
	box := device.Box1() // HDD RAID 0, L-SSD, H-SSD: plain HDD absent
	cp := CompileProfile(prof, box, 1, cat.NumObjects())

	// Object missing from the layout.
	missing := catalog.NewUniformLayout(cat, device.HSSD)
	delete(missing, 1)
	if _, err := prof.IOTime(missing, box, 1); err == nil || !strings.Contains(err.Error(), "not placed") {
		t.Fatalf("map path: want a not-placed error, got %v", err)
	}
	cl, _ := catalog.CompactFromLayout(cat, missing)
	if _, err := cp.IOTime(cl); err == nil || !strings.Contains(err.Error(), "not placed") {
		t.Fatalf("compiled path: want a not-placed error, got %v", err)
	}

	// Profiled object on a class absent from the box.
	absent := catalog.NewUniformLayout(cat, device.HSSD)
	absent[1] = device.HDD
	if _, err := prof.IOTime(absent, box, 1); err == nil || !strings.Contains(err.Error(), "absent from box") {
		t.Fatalf("map path: want an absent-class error, got %v", err)
	}
	cla, _ := catalog.CompactFromLayout(cat, absent)
	if _, err := cp.IOTime(cla); err == nil || !strings.Contains(err.Error(), "absent from box") {
		t.Fatalf("compiled path: want an absent-class error, got %v", err)
	}
	// Delta into or out of an absent class errors too.
	if _, err := cp.DeltaIOTime(1, device.HSSD, device.HDD); err == nil {
		t.Fatal("delta into an absent class must error")
	}
	if _, err := cp.DeltaIOTime(1, device.HDD, device.HSSD); err == nil {
		t.Fatal("delta out of an absent class must error")
	}

	// An all-zero I/O vector still demands placement, as on the map path.
	zero := NewProfile()
	zero.Add(2, device.SeqRead, 0)
	zcp := CompileProfile(zero, box, 1, cat.NumObjects())
	empty := catalog.NewCompactLayout(cat.NumObjects())
	if _, err := zcp.IOTime(empty); err == nil {
		t.Fatal("zero-vector profiled object still requires placement")
	}
	if _, err := zero.IOTime(catalog.Layout{}, box, 1); err == nil {
		t.Fatal("map path: zero-vector profiled object still requires placement")
	}
}
