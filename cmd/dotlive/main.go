// Command dotlive demonstrates the online advising loop end to end, in one
// process: it builds a scaled-down TPC-C database, installs the online
// profile collector as the engine's I/O tap, replays a workload whose mix
// shifts mid-run from pure OLTP (the TPC-C transaction mix, random-I/O
// dominated) to HTAP (the same transactions plus TPC-H-style analytical
// scans over orders and order lines, sequential-I/O dominated), and prints
// every window's drift check and re-advise decision.
//
//	go run ./cmd/dotlive
//	go run ./cmd/dotlive -windows 8 -shift-at 4 -sla 0.25 -box 1
//	go run ./cmd/dotlive -skew -sla 0.2
//	go run ./cmd/dotlive -replication -sla 0.5
//
// With -replication the demo drives the replica-set advisor on the
// striped-HDD HTAP box: the stream opens with point lookups (single copies
// on the H-SSD), the analytical scans join mid-run and the re-advise GROWS
// a second scan copy of the fact table on the HDD stripe — reads route per
// pattern to their best replica, writes land on every copy — and when the
// scans fade the next re-advise DROPS the copy again (drops are free,
// adds are priced against the SLA headroom).
//
// With -skew the demo instead replays the Zipf hot/cold fixture
// (workload.Skewed) and contrasts object-granular DOT with
// partition-granular DOT on the same hardware and SLA: the partitioned
// search keeps only each table's hot head on expensive storage and ships
// the cold tail to a cheap class, meeting the same SLA at a fraction of
// the storage cost.
//
// Expected shape of the output: the OLTP windows confirm the initial
// layout (divergence ≈ 0, no re-advise); the first HTAP window trips the
// drift detector and the advisor re-advises incrementally — a handful of
// objects move, priced against the migration budget — after which the
// drifted mix becomes the new reference and subsequent windows settle
// again.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"dotprov/internal/bench"
	"dotprov/internal/catalog"
	"dotprov/internal/core"
	"dotprov/internal/device"
	"dotprov/internal/engine"
	"dotprov/internal/iosim"
	"dotprov/internal/online"
	"dotprov/internal/plan"
	"dotprov/internal/tpcc"
	"dotprov/internal/types"
	"dotprov/internal/workload"
)

func main() {
	var (
		boxNo      = flag.Int("box", 2, "storage box (1 or 2)")
		sla        = flag.Float64("sla", 0.25, "relative SLA in (0, 1]")
		windows    = flag.Int("windows", 6, "observation windows to replay")
		shiftAt    = flag.Int("shift-at", 3, "window (1-based) at which the analytical mix joins the stream")
		workers    = flag.Int("workers", 4, "concurrent OLTP workers (degree of concurrency)")
		period     = flag.Duration("period", 2*time.Second, "virtual measured period per window and worker")
		poolPages  = flag.Int("pool-pages", 512, "buffer pool pages")
		threshold  = flag.Float64("drift-threshold", 0.2, "relative I/O-time divergence that triggers re-advising")
		mergeEach  = flag.Duration("merge-every", 0, "background shard-merge interval for the collector (0 merges only at window reads)")
		skew       = flag.Bool("skew", false, "replay the Zipf hot/cold fixture and contrast object- vs partition-granular DOT")
		replicated = flag.Bool("replication", false, "drive the replica-set advisor on the HTAP box: grow a scan copy when analytics join the mix, drop it on revert")
		revertAt   = flag.Int("revert-at", 5, "-replication: window (1-based) at which the analytical scans fade again")
		maxCopies  = flag.Int("max-replicas", 2, "-replication: copies per object cap (<1 means one per storage class)")
		headroom   = flag.Float64("headroom", 1.0, "-replication: fraction of the SLA headroom the migration gate may spend copying data (copying 40 GB onto the stripe is a real cost)")
		observeURL = flag.String("observe-url", "", "mirror observation windows to a running dotserve at this base URL (e.g. http://localhost:8080; empty disables)")
		observeStr = flag.String("observe-stream", "dotlive", "stream name for -observe-url mirroring")
	)
	flag.Parse()
	if *skew {
		if err := runSkew(*boxNo, *sla); err != nil {
			log.Fatalf("dotlive: %v", err)
		}
		return
	}
	if *replicated {
		if err := runReplicated(*sla, *windows, *shiftAt, *revertAt, *maxCopies, *headroom); err != nil {
			log.Fatalf("dotlive: %v", err)
		}
		return
	}
	if err := run(*boxNo, *sla, *windows, *shiftAt, *workers, *period, *poolPages, *threshold, *mergeEach, *observeURL, *observeStr); err != nil {
		log.Fatalf("dotlive: %v", err)
	}
}

// runSkew is the partition-granularity demo: the Zipf hot/cold fixture is
// advised twice on the same box and SLA — once placing whole objects, once
// placing heat-based partitions — and the layouts and storage costs are
// printed side by side.
func runSkew(boxNo int, sla float64) error {
	box := device.Box1()
	if boxNo == 2 {
		box = device.Box2()
	}
	// The demo runs the exact fixture input the CI-gated experiment and
	// benchmarks use; at -sla 0.2 (bench.SkewSLA, the gated setting) its
	// numbers reproduce BENCH_5.json/EXPERIMENTS.md.
	in, fx, err := bench.SkewFixtureInput(box)
	if err != nil {
		return err
	}
	fmt.Printf("dotlive -skew: Zipf hot/cold fixture on %s, SLA %g\n", box.Name, sla)
	opts := core.Options{RelativeSLA: sla}
	obj, err := core.OptimizeBest(in, opts)
	if err != nil {
		return err
	}
	pt, err := catalog.BuildPartitioning(fx.Cat, fx.Stats, catalog.PartitionOptions{})
	if err != nil {
		return err
	}
	pres, err := core.OptimizePartitioned(in, pt, opts)
	if err != nil {
		return err
	}
	if !obj.Feasible || !pres.Feasible {
		return fmt.Errorf("fixture infeasible at SLA %g (object=%v partitioned=%v)", sla, obj.Feasible, pres.Feasible)
	}
	ocost, err := obj.Layout.CostCentsPerHour(fx.Cat, box)
	if err != nil {
		return err
	}
	pcost, err := pres.Layout.CostCentsPerHour(pt.UnitCatalog(), box)
	if err != nil {
		return err
	}
	fmt.Printf("\nobject-granular DOT (%d candidates): storage %.4e cents/h\n%s",
		obj.Evaluated, ocost, obj.Layout.String(fx.Cat))
	fmt.Printf("\npartition-granular DOT (%d units, %d candidates, %d objects split): storage %.4e cents/h\n%s",
		pt.NumUnits(), pres.Evaluated, pres.SplitObjects(), pcost, pres.Layout.String(pt.UnitCatalog()))
	fmt.Printf("\nsame SLA, %.1fx cheaper storage with partition-granular placement\n", ocost/pcost)
	return nil
}

// runReplicated is the -replication demo: the replica-set advisor on the
// striped-HDD HTAP box, driven by synthetic observation windows. The arc: point
// lookups define the stream and place single copies; the analytical scans
// join at -shift-at and the drifted re-advise grows a second scan copy of
// the fact table on the HDD stripe; the scans fade at -revert-at and the
// next re-advise drops the copy again.
func runReplicated(sla float64, windows, shiftAt, revertAt, maxCopies int, headroom float64) error {
	if revertAt <= shiftAt {
		return fmt.Errorf("-revert-at %d must come after -shift-at %d", revertAt, shiftAt)
	}
	box := device.BoxHTAP()
	cat := catalog.New()
	sch := types.NewSchema(types.Column{Name: "id", Kind: types.KindInt})
	orders, err := cat.CreateTable("orders", sch, []string{"id"})
	if err != nil {
		return err
	}
	ix, err := cat.CreateIndex("orders_pkey", orders.ID, []string{"id"}, true)
	if err != nil {
		return err
	}
	cat.SetSize(orders.ID, 40e9)
	cat.SetSize(ix.ID, 2e9)
	mgr, err := online.NewManager(online.Config{
		Cat: cat, Box: box, SLA: sla,
		HeadroomFraction: headroom,
		Replication:      core.ReplicationConfig{Enabled: true, MaxReplicas: maxCopies},
	})
	if err != nil {
		return err
	}
	fmt.Printf("dotlive -replication: orders (40 GB) + pkey on %s, SLA %g, %d windows (scans join at %d, fade at %d)\n",
		box.Name, sla, windows, shiftAt, revertAt)

	lookups := func() online.Window {
		p := iosim.NewProfile()
		p.Add(orders.ID, device.RandRead, 150000)
		p.Add(ix.ID, device.RandRead, 50000)
		return online.Window{Profile: p, CPU: 100 * time.Millisecond, Elapsed: time.Hour}
	}
	// Two full fact-table scans per window: heavy enough that the SLA
	// headroom on the drifted baseline covers the ~2 minutes it takes to
	// materialize a 40 GB copy, so the migration gate admits the grow.
	scanLookups := func() online.Window {
		p := iosim.NewProfile()
		p.Add(orders.ID, device.SeqRead, 1e7)
		p.Add(orders.ID, device.RandRead, 150000)
		p.Add(ix.ID, device.RandRead, 50000)
		return online.Window{Profile: p, CPU: 100 * time.Millisecond, Elapsed: time.Hour}
	}

	printSet := func(sl catalog.SetLayout) {
		fmt.Print(sl.String(cat))
	}

	for w := 1; w <= windows; w++ {
		label, win := "oltp", lookups()
		if w >= shiftAt && w < revertAt {
			label, win = "htap", scanLookups()
		}
		mgr.Observe(win)

		if w == 1 {
			dec, err := mgr.Advise()
			if err != nil {
				return err
			}
			if !dec.Feasible {
				return fmt.Errorf("initial advise infeasible at SLA %g", sla)
			}
			fmt.Printf("window %d [%s]: initial advise — max %d copies per object, TOC %.4e cents, %d candidates\n",
				w, label, dec.Replica.MaxCopies(), dec.Result.TOCCents, dec.Result.Evaluated)
			printSet(dec.SetTo)
			continue
		}

		dec, err := mgr.ReAdvise(false)
		if err != nil {
			return err
		}
		switch {
		case dec.Drift.Thin:
			fmt.Printf("window %d [%s]: window too thin to judge, no action\n", w, label)
		case !dec.Drift.Drifted:
			fmt.Printf("window %d [%s]: no drift (divergence %.3f), layout unchanged\n",
				w, label, dec.Drift.Divergence)
		case !dec.Feasible:
			fmt.Printf("window %d [%s]: DRIFT (divergence %.3f) but no feasible layout — keeping current, will retry\n",
				w, label, dec.Drift.Divergence)
		case !dec.ReAdvised:
			fmt.Printf("window %d [%s]: DRIFT (divergence %.3f), search confirmed the deployed layout (%d candidates)\n",
				w, label, dec.Drift.Divergence, dec.Result.Evaluated)
		default:
			mode := "incremental"
			if !dec.Incremental {
				mode = "full fallback"
			}
			verb := "re-placed"
			if grew := dec.Replica.MaxCopies() - maxSetCopies(dec.SetFrom); grew > 0 {
				verb = "GREW a copy"
			} else if grew < 0 {
				verb = "DROPPED a copy"
			}
			fmt.Printf("window %d [%s]: DRIFT (divergence %.3f) → %s (%s): %d transitions (%.1f MB copied, migration %v), TOC %.4e, %d candidates\n",
				w, label, dec.Drift.Divergence, verb, mode, len(dec.Migration.Moves),
				float64(dec.Migration.Bytes)/1e6, dec.Migration.Time.Round(time.Millisecond),
				dec.Result.TOCCents, dec.Result.Evaluated)
			printSet(dec.SetTo)
		}
	}

	st := mgr.Stats()
	fmt.Printf("done: %d windows, %d drift checks, %d drifted, %d re-advises (%d full fallbacks)\n",
		st.WindowsClosed, st.Checks, st.Drifts, st.ReAdvises, st.Fallbacks)
	return nil
}

// maxSetCopies is the largest replica count in a set layout (0 when nil).
func maxSetCopies(sl catalog.SetLayout) int {
	max := 0
	for _, s := range sl {
		if c := s.Count(); c > max {
			max = c
		}
	}
	return max
}

// analyticsMix is the TPC-H-style read side of the HTAP phase: full scans
// and a join over the TPC-C fact tables, the access pattern the deployed
// OLTP layout was not optimized for.
func analyticsMix() *workload.DSS {
	return &workload.DSS{Name: "htap-analytics", Queries: []*plan.Query{
		{
			Name:   "revenue",
			Tables: []string{"order_line"},
			Aggs:   []plan.Agg{{Func: plan.Sum, Table: "order_line", Column: "ol_amount"}, {Func: plan.Count}},
		},
		{
			Name:   "order-volume",
			Tables: []string{"orders"},
			Aggs:   []plan.Agg{{Func: plan.Avg, Table: "orders", Column: "o_ol_cnt"}, {Func: plan.Count}},
		},
		{
			Name:   "customer-order-join",
			Tables: []string{"customer", "orders"},
			Joins: []plan.EquiJoin{{
				LeftTable: "customer", LeftColumn: "c_id",
				RightTable: "orders", RightColumn: "o_c_id",
			}},
			Aggs: []plan.Agg{{Func: plan.Count}},
		},
		{
			Name:   "stock-levels",
			Tables: []string{"stock"},
			Aggs:   []plan.Agg{{Func: plan.Avg, Table: "stock", Column: "s_quantity"}, {Func: plan.Count}},
		},
	}}
}

func run(boxNo int, sla float64, windows, shiftAt, workers int, period time.Duration, poolPages int, threshold float64, mergeEvery time.Duration, observeURL, observeStream string) error {
	box := device.Box1()
	boxName := "box1"
	if boxNo == 2 {
		box = device.Box2()
		boxName = "box2"
	}
	fmt.Printf("dotlive: TPC-C on %s, SLA %g, %d windows (mix shifts at window %d)\n",
		box.Name, sla, windows, shiftAt)

	db := engine.New(box, poolPages)
	cfg := tpcc.DefaultConfig()
	if err := tpcc.Build(db, cfg); err != nil {
		return err
	}
	// Deploy the profiling baseline: everything on the most expensive class
	// (the paper's L0), the layout the first window is captured under.
	if err := db.SetLayout(catalog.NewUniformLayout(db.Cat, box.MostExpensive().Class)); err != nil {
		return err
	}

	mgr, err := online.NewManager(online.Config{
		Cat:            db.Cat,
		Box:            box,
		Concurrency:    workers,
		SLA:            sla,
		Deployed:       db.Layout(),
		DriftThreshold: threshold,
	})
	if err != nil {
		return err
	}
	// The capture point: every buffer miss and row write any session
	// charges from here on streams into the collector's current window.
	db.SetTap(mgr.Collector())
	if mergeEvery > 0 {
		// Keep the current window fresh between window reads: the ticker
		// folds the sharded accumulators so a mid-window inspection (or a
		// dashboard scraping the manager) sees recent traffic, not just
		// whatever the last Roll forced in.
		mgr.Collector().StartMerger(mergeEvery)
		defer mgr.Collector().Close()
	}

	driver := &tpcc.Driver{Cfg: cfg, Workers: workers, Period: period, Seed: 42}
	analytics := analyticsMix()

	var mir *mirror
	defer func() { mir.close() }()

	for w := 1; w <= windows; w++ {
		htap := w >= shiftAt
		label := "oltp"
		if htap {
			label = "htap"
		}
		run, err := driver.Run(db)
		if err != nil {
			return fmt.Errorf("window %d: %w", w, err)
		}
		elapsed := run.Stats.Elapsed
		col := mgr.Collector()
		col.AddCPU(run.CPUTime)
		col.AddTxns(run.Stats.Txns)
		if htap {
			// The OLTP phase's inserts staled the planner statistics; refresh
			// them before the analytical queries plan (uncharged, like DDL).
			if err := db.Analyze(); err != nil {
				return err
			}
			// RunDetailed reports per-query CPU, so the window's CPU and
			// elapsed stay consistent (Run would charge CPU to its private
			// sessions where the tap cannot see it).
			obs, err := analytics.RunDetailed(db)
			if err != nil {
				return fmt.Errorf("window %d analytics: %w", w, err)
			}
			elapsed += obs.Metrics.Elapsed
			for _, q := range obs.PerQuery {
				col.AddCPU(q.CPU)
			}
		}
		win := col.Roll(elapsed)
		if w == 1 && observeURL != "" {
			// The first window defines the mirror stream (JSON observe);
			// later windows ship as binary frames through the obsclient.
			mir, err = newMirror(observeURL, observeStream, db, boxName, sla, threshold, workers, win)
			if err != nil {
				return fmt.Errorf("mirroring to %s: %w", observeURL, err)
			}
		} else {
			mir.ship(win)
		}

		if w == 1 {
			dec, err := mgr.Advise()
			if err != nil {
				return err
			}
			if !dec.Feasible {
				return fmt.Errorf("initial advise infeasible at SLA %g", sla)
			}
			if err := db.SetLayout(dec.To); err != nil {
				return err
			}
			fmt.Printf("window %d [%s]: initial advise — %d objects placed, TOC %.4e cents/txn, %d candidates in %v\n",
				w, label, len(dec.To), dec.Result.TOCCents, dec.Result.Evaluated,
				dec.Result.PlanTime.Round(time.Millisecond))
			continue
		}

		dec, err := mgr.ReAdvise(false)
		if err != nil {
			return err
		}
		switch {
		case dec.Drift.Thin:
			fmt.Printf("window %d [%s]: window too thin to judge, no action\n", w, label)
		case !dec.Drift.Drifted:
			fmt.Printf("window %d [%s]: no drift (divergence %.3f), layout unchanged\n",
				w, label, dec.Drift.Divergence)
		case !dec.Feasible:
			fmt.Printf("window %d [%s]: DRIFT (divergence %.3f) but no feasible layout — keeping current, will retry\n",
				w, label, dec.Drift.Divergence)
		case !dec.ReAdvised:
			fmt.Printf("window %d [%s]: DRIFT (divergence %.3f), search confirmed the deployed layout (%d candidates)\n",
				w, label, dec.Drift.Divergence, dec.Result.Evaluated)
		default:
			mode := "incremental"
			if !dec.Incremental {
				mode = "full fallback"
			}
			fmt.Printf("window %d [%s]: DRIFT (divergence %.3f) → re-advised (%s): %d objects move (%.1f MB, migration %v), TOC %.4e, %d candidates in %v\n",
				w, label, dec.Drift.Divergence, mode, len(dec.Migration.Moves),
				float64(dec.Migration.Bytes)/1e6, dec.Migration.Time.Round(time.Millisecond),
				dec.Result.TOCCents, dec.Result.Evaluated,
				dec.Result.PlanTime.Round(time.Millisecond))
			if err := db.SetLayout(dec.To); err != nil {
				return err
			}
		}
	}

	st := mgr.Stats()
	fmt.Printf("done: %d windows, %d drift checks, %d drifted, %d re-advises (%d full fallbacks)\n",
		st.WindowsClosed, st.Checks, st.Drifts, st.ReAdvises, st.Fallbacks)
	return nil
}
