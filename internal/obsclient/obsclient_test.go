package obsclient

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dotprov/internal/online"
	"dotprov/internal/serve"
)

// frameSink is an httptest handler that decodes delivered batches and
// scripts its responses: each call pops the next status from script (an
// empty script answers 202 forever).
type frameSink struct {
	mu      sync.Mutex
	frames  []online.Frame
	batches int
	script  []int
	headers []http.Header // response headers per scripted status, optional
	block   chan struct{} // when non-nil, requests wait on it before answering
}

func (fs *frameSink) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if fs.block != nil {
		<-fs.block
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if r.Header.Get("Content-Type") != online.ContentTypeFrames {
		http.Error(w, "wrong content type", http.StatusUnsupportedMediaType)
		return
	}
	status := http.StatusAccepted
	if len(fs.script) > 0 {
		status = fs.script[0]
		fs.script = fs.script[1:]
		if len(fs.headers) > 0 {
			for k, vs := range fs.headers[0] {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			fs.headers = fs.headers[1:]
		}
	}
	if status != http.StatusAccepted {
		w.WriteHeader(status)
		return
	}
	body := make([]byte, 0, 1024)
	buf := make([]byte, 4096)
	for {
		n, err := r.Body.Read(buf)
		body = append(body, buf[:n]...)
		if err != nil {
			break
		}
	}
	frames, err := serve.DecodeExtentFrames(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fs.frames = append(fs.frames, frames...)
	fs.batches++
	w.WriteHeader(http.StatusAccepted)
}

func (fs *frameSink) got() ([]online.Frame, int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return append([]online.Frame(nil), fs.frames...), fs.batches
}

// seqFrame builds a distinguishable valid frame: Txns carries the sequence
// number so delivery order is checkable on the far side.
func seqFrame(i int) online.Frame {
	return online.Frame{CPU: time.Millisecond, Elapsed: 2 * time.Millisecond, Txns: int64(i)}
}

func newTestClient(t *testing.T, url string, mut func(*Config)) *Client {
	t.Helper()
	cfg := Config{
		BaseURL:    url,
		Stream:     "s1",
		MinBackoff: time.Millisecond,
		MaxBackoff: 20 * time.Millisecond,
		Seed:       1,
		Logf:       t.Logf,
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func flush(t *testing.T, c *Client) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Flush(ctx); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}

func TestClientDeliversInOrder(t *testing.T) {
	sink := &frameSink{}
	ts := httptest.NewServer(sink)
	defer ts.Close()
	c := newTestClient(t, ts.URL, func(cfg *Config) { cfg.MaxBatch = 4 })
	const n = 10
	for i := 0; i < n; i++ {
		if !c.Observe(seqFrame(i)) {
			t.Fatalf("Observe(%d) refused", i)
		}
	}
	flush(t, c)
	frames, batches := sink.got()
	if len(frames) != n {
		t.Fatalf("delivered %d frames, want %d", len(frames), n)
	}
	for i, f := range frames {
		if f.Txns != int64(i) {
			t.Fatalf("frame %d carries seq %d; order not preserved", i, f.Txns)
		}
	}
	if batches < 3 { // 10 frames at MaxBatch 4 needs >= 3 POSTs
		t.Fatalf("server saw %d batches, want >= 3", batches)
	}
	st := c.Stats()
	if st.Enqueued != n || st.SentFrames != n || st.Dropped != 0 || st.Rejected != 0 {
		t.Fatalf("stats %+v, want %d enqueued and sent, none lost", st, n)
	}
	if st.SentBatches != int64(batches) {
		t.Fatalf("client counted %d batches, server saw %d", st.SentBatches, batches)
	}
}

func TestClientRetriesTransientFailures(t *testing.T) {
	sink := &frameSink{script: []int{http.StatusInternalServerError, http.StatusBadGateway}}
	ts := httptest.NewServer(sink)
	defer ts.Close()
	c := newTestClient(t, ts.URL, nil)
	c.Observe(seqFrame(0))
	c.Observe(seqFrame(1))
	flush(t, c)
	frames, _ := sink.got()
	if len(frames) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(frames))
	}
	st := c.Stats()
	if st.Retries < 2 {
		t.Fatalf("stats %+v: want >= 2 retries for two scripted 5xx answers", st)
	}
	if st.SentFrames != 2 || st.Dropped != 0 || st.Rejected != 0 {
		t.Fatalf("stats %+v: both frames must eventually land", st)
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	h := http.Header{}
	h.Set("Retry-After", "3600")
	sink := &frameSink{script: []int{http.StatusTooManyRequests}, headers: []http.Header{h}}
	ts := httptest.NewServer(sink)
	defer ts.Close()
	// MaxBackoff clamps the (absurd) hour-long hint, so the test proves
	// both that the hint is parsed and that it cannot park the client.
	c := newTestClient(t, ts.URL, nil)
	c.Observe(seqFrame(0))
	flush(t, c)
	if frames, _ := sink.got(); len(frames) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(frames))
	}
	if st := c.Stats(); st.Retries != 1 || st.SentFrames != 1 {
		t.Fatalf("stats %+v: want exactly one 429 retry then delivery", st)
	}
}

func TestClientDropsRejectedBatch(t *testing.T) {
	sink := &frameSink{script: []int{http.StatusNotFound}}
	ts := httptest.NewServer(sink)
	defer ts.Close()
	c := newTestClient(t, ts.URL, func(cfg *Config) { cfg.MaxBatch = 2 })
	c.Observe(seqFrame(0))
	c.Observe(seqFrame(1))
	flush(t, c)
	// The rejected batch is gone; a later frame still flows.
	c.Observe(seqFrame(2))
	flush(t, c)
	frames, _ := sink.got()
	if len(frames) != 1 || frames[0].Txns != 2 {
		t.Fatalf("delivered %v, want only the post-rejection frame (seq 2)", frames)
	}
	st := c.Stats()
	if st.Rejected != 2 || st.Retries != 0 {
		t.Fatalf("stats %+v: want the 404 batch counted rejected, never retried", st)
	}
}

func TestClientShedsOldestUnderPressure(t *testing.T) {
	release := make(chan struct{})
	sink := &frameSink{block: release}
	ts := httptest.NewServer(sink)
	defer ts.Close()
	c := newTestClient(t, ts.URL, func(cfg *Config) {
		cfg.MaxBuffer = 2
		cfg.MaxBatch = 1
	})
	// Frame 0 goes in flight (the server holds it); the 2-frame buffer then
	// sheds oldest as 1..4 arrive, keeping only 3 and 4.
	c.Observe(seqFrame(0))
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		inflight := c.inflight
		c.mu.Unlock()
		if inflight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("frame 0 never went in flight")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 1; i <= 4; i++ {
		c.Observe(seqFrame(i))
	}
	close(release)
	flush(t, c)
	frames, _ := sink.got()
	want := []int64{0, 3, 4}
	if len(frames) != len(want) {
		t.Fatalf("delivered %d frames, want %d (%v)", len(frames), len(want), frames)
	}
	for i, w := range want {
		if frames[i].Txns != w {
			t.Fatalf("frame %d carries seq %d, want %d", i, frames[i].Txns, w)
		}
	}
	st := c.Stats()
	if st.Dropped != 2 {
		t.Fatalf("stats %+v: want exactly the 2 shed frames counted dropped", st)
	}
}

func TestClientCloseAbandonsBuffered(t *testing.T) {
	release := make(chan struct{})
	sink := &frameSink{block: release}
	ts := httptest.NewServer(sink)
	defer ts.Close()
	defer close(release)
	c := newTestClient(t, ts.URL, func(cfg *Config) { cfg.MaxBatch = 1 })
	for i := 0; i < 3; i++ {
		c.Observe(seqFrame(i))
	}
	c.Close()
	if c.Observe(seqFrame(9)) {
		t.Fatal("Observe accepted a frame after Close")
	}
	st := c.Stats()
	if st.Dropped+st.SentFrames != 3 {
		t.Fatalf("stats %+v: every enqueued frame must resolve at Close", st)
	}
	if st.Dropped == 0 {
		t.Fatalf("stats %+v: the blocked server cannot have acked all 3", st)
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{Stream: "s"}); err == nil {
		t.Fatal("New accepted an empty BaseURL")
	}
	if _, err := New(Config{BaseURL: "http://x"}); err == nil {
		t.Fatal("New accepted an empty Stream")
	}
}

func TestFlushRespectsContext(t *testing.T) {
	release := make(chan struct{})
	sink := &frameSink{block: release}
	ts := httptest.NewServer(sink)
	defer ts.Close()
	defer close(release)
	c := newTestClient(t, ts.URL, nil)
	c.Observe(seqFrame(0))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := c.Flush(ctx); err == nil {
		t.Fatal("Flush returned nil with a frame stuck on a blocked server")
	}
}
