// Package tpcc provides the TPC-C-like OLTP substrate of the paper's §4.5
// evaluation: the nine-table schema with the paper's index set (Table 3
// lists the eight primary-key indexes plus i_orders and i_customer — 19
// placeable objects), a scaled-down generator, the five transaction
// profiles, and a driver measuring New-Order transactions per minute (tpmC)
// on the virtual clock. Access is random-I/O dominated by construction,
// matching the paper's observation (§4.5.1).
package tpcc

import (
	"fmt"
	"math/rand"

	"dotprov/internal/engine"
	"dotprov/internal/types"
)

// Config scales the generated database.
type Config struct {
	Warehouses        int
	DistrictsPerW     int
	CustomersPerDist  int
	Items             int
	OrdersPerDistrict int
	Seed              int64
}

// DefaultConfig is a laptop-scale configuration (the paper populates scale
// factor 300 — 300 warehouses — on real hardware).
func DefaultConfig() Config {
	return Config{
		Warehouses:        2,
		DistrictsPerW:     10,
		CustomersPerDist:  100,
		Items:             500,
		OrdersPerDistrict: 100,
		Seed:              1,
	}
}

func col(name string, k types.Kind) types.Column { return types.Column{Name: name, Kind: k} }

// lastNames generates TPC-C style customer last names from the syllable
// table, so i_customer lookups by last name have realistic duplication.
var lastSyllables = []string{"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"}

// LastName returns the TPC-C last name for a number in [0, 999].
func LastName(num int) string {
	return lastSyllables[num/100%10] + lastSyllables[num/10%10] + lastSyllables[num%10]
}

// Build creates the TPC-C schema and loads the initial population, then
// analyzes. Objects: 9 tables, 8 PK indexes (history has none), i_customer
// and i_orders.
func Build(db *engine.DB, cfg Config) error {
	type def struct {
		name   string
		schema *types.Schema
		pk     []string
	}
	defs := []def{
		{"warehouse", types.NewSchema(
			col("w_id", types.KindInt), col("w_name", types.KindString),
			col("w_tax", types.KindFloat), col("w_ytd", types.KindFloat),
		), []string{"w_id"}},
		{"district", types.NewSchema(
			col("d_w_id", types.KindInt), col("d_id", types.KindInt),
			col("d_tax", types.KindFloat), col("d_ytd", types.KindFloat),
			col("d_next_o_id", types.KindInt),
		), []string{"d_w_id", "d_id"}},
		{"customer", types.NewSchema(
			col("c_w_id", types.KindInt), col("c_d_id", types.KindInt), col("c_id", types.KindInt),
			col("c_last", types.KindString), col("c_first", types.KindString),
			col("c_balance", types.KindFloat), col("c_ytd_payment", types.KindFloat),
			col("c_payment_cnt", types.KindInt), col("c_data", types.KindString),
		), []string{"c_w_id", "c_d_id", "c_id"}},
		{"history", types.NewSchema(
			col("h_w_id", types.KindInt), col("h_d_id", types.KindInt), col("h_c_id", types.KindInt),
			col("h_date", types.KindDate), col("h_amount", types.KindFloat),
		), nil}, // history has no primary key in TPC-C
		{"item", types.NewSchema(
			col("i_id", types.KindInt), col("i_name", types.KindString),
			col("i_price", types.KindFloat), col("i_data", types.KindString),
		), []string{"i_id"}},
		{"stock", types.NewSchema(
			col("s_w_id", types.KindInt), col("s_i_id", types.KindInt),
			col("s_quantity", types.KindInt), col("s_ytd", types.KindInt),
			col("s_order_cnt", types.KindInt), col("s_data", types.KindString),
		), []string{"s_w_id", "s_i_id"}},
		{"orders", types.NewSchema(
			col("o_w_id", types.KindInt), col("o_d_id", types.KindInt), col("o_id", types.KindInt),
			col("o_c_id", types.KindInt), col("o_entry_d", types.KindDate),
			col("o_carrier_id", types.KindInt), col("o_ol_cnt", types.KindInt),
		), []string{"o_w_id", "o_d_id", "o_id"}},
		{"new_order", types.NewSchema(
			col("no_w_id", types.KindInt), col("no_d_id", types.KindInt), col("no_o_id", types.KindInt),
		), []string{"no_w_id", "no_d_id", "no_o_id"}},
		{"order_line", types.NewSchema(
			col("ol_w_id", types.KindInt), col("ol_d_id", types.KindInt), col("ol_o_id", types.KindInt),
			col("ol_number", types.KindInt), col("ol_i_id", types.KindInt),
			col("ol_quantity", types.KindInt), col("ol_amount", types.KindFloat),
			col("ol_delivery_d", types.KindDate),
		), []string{"ol_w_id", "ol_d_id", "ol_o_id", "ol_number"}},
	}
	for _, d := range defs {
		if _, err := db.CreateTable(d.name, d.schema, d.pk); err != nil {
			return err
		}
	}
	// The paper's secondary indexes (Table 3): i_customer on the customer
	// last name (per district) and i_orders on the order's customer.
	if _, err := db.CreateIndex("i_customer", "customer", []string{"c_w_id", "c_d_id", "c_last"}, false); err != nil {
		return err
	}
	if _, err := db.CreateIndex("i_orders", "orders", []string{"o_w_id", "o_d_id", "o_c_id"}, false); err != nil {
		return err
	}
	if err := loadAll(db, cfg); err != nil {
		return err
	}
	return db.Analyze()
}

func loadAll(db *engine.DB, cfg Config) error {
	r := rand.New(rand.NewSource(cfg.Seed))
	pad := "initial-data-padding-padding-padding"
	for w := 0; w < cfg.Warehouses; w++ {
		if err := db.Load("warehouse", types.Tuple{
			types.NewInt(int64(w)), types.NewString(fmt.Sprintf("WH%03d", w)),
			types.NewFloat(r.Float64() * 0.2), types.NewFloat(300000),
		}); err != nil {
			return err
		}
		for i := 0; i < cfg.Items; i++ {
			if w == 0 { // items are global
				if err := db.Load("item", types.Tuple{
					types.NewInt(int64(i)), types.NewString(fmt.Sprintf("item-%06d", i)),
					types.NewFloat(1 + r.Float64()*99), types.NewString(pad),
				}); err != nil {
					return err
				}
			}
			if err := db.Load("stock", types.Tuple{
				types.NewInt(int64(w)), types.NewInt(int64(i)),
				types.NewInt(int64(10 + r.Intn(90))), types.NewInt(0), types.NewInt(0),
				types.NewString(pad),
			}); err != nil {
				return err
			}
		}
		for d := 0; d < cfg.DistrictsPerW; d++ {
			if err := db.Load("district", types.Tuple{
				types.NewInt(int64(w)), types.NewInt(int64(d)),
				types.NewFloat(r.Float64() * 0.2), types.NewFloat(30000),
				types.NewInt(int64(cfg.OrdersPerDistrict)),
			}); err != nil {
				return err
			}
			for c := 0; c < cfg.CustomersPerDist; c++ {
				if err := db.Load("customer", types.Tuple{
					types.NewInt(int64(w)), types.NewInt(int64(d)), types.NewInt(int64(c)),
					types.NewString(LastName(nonUniform(r, 255, 999))),
					types.NewString(fmt.Sprintf("first-%04d", c)),
					types.NewFloat(-10), types.NewFloat(10), types.NewInt(1),
					types.NewString(pad + pad),
				}); err != nil {
					return err
				}
				if err := db.Load("history", types.Tuple{
					types.NewInt(int64(w)), types.NewInt(int64(d)), types.NewInt(int64(c)),
					types.NewDate(10000), types.NewFloat(10),
				}); err != nil {
					return err
				}
			}
			for o := 0; o < cfg.OrdersPerDistrict; o++ {
				cid := r.Intn(cfg.CustomersPerDist)
				olCnt := 5 + r.Intn(6)
				if err := db.Load("orders", types.Tuple{
					types.NewInt(int64(w)), types.NewInt(int64(d)), types.NewInt(int64(o)),
					types.NewInt(int64(cid)), types.NewDate(10000 + int64(o)),
					types.NewInt(int64(1 + r.Intn(10))), types.NewInt(int64(olCnt)),
				}); err != nil {
					return err
				}
				for ol := 0; ol < olCnt; ol++ {
					if err := db.Load("order_line", types.Tuple{
						types.NewInt(int64(w)), types.NewInt(int64(d)), types.NewInt(int64(o)),
						types.NewInt(int64(ol)), types.NewInt(int64(r.Intn(cfg.Items))),
						types.NewInt(5), types.NewFloat(r.Float64() * 9999),
						types.NewDate(10000 + int64(o)),
					}); err != nil {
						return err
					}
				}
				// The most recent third of orders are undelivered.
				if o >= cfg.OrdersPerDistrict*2/3 {
					if err := db.Load("new_order", types.Tuple{
						types.NewInt(int64(w)), types.NewInt(int64(d)), types.NewInt(int64(o)),
					}); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// nonUniform implements TPC-C's NURand-style skewed distribution.
func nonUniform(r *rand.Rand, a, max int) int {
	return ((r.Intn(a+1) | r.Intn(max+1)) % (max + 1))
}
