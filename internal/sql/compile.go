package sql

import (
	"fmt"

	"dotprov/internal/engine"
	"dotprov/internal/plan"
	"dotprov/internal/types"
)

// SchemaSource resolves a table name to its schema during compilation.
// *engine.DB satisfies it.
type SchemaSource interface {
	TableSchema(name string) *types.Schema
}

// Compile lowers a parsed SELECT into the engine's query IR, resolving
// unqualified column references against the FROM tables' schemas.
// Plain (non-aggregate) select items act as documentation only: the engine
// emits whole rows, so projections are accepted and recorded in the query
// name but not enforced.
func Compile(sel *SelectStmt, src SchemaSource, name string) (*plan.Query, error) {
	if name == "" {
		name = "sql-query"
	}
	schemas := make(map[string]*types.Schema, len(sel.Tables))
	for _, t := range sel.Tables {
		sch := src.TableSchema(t)
		if sch == nil {
			return nil, fmt.Errorf("sql: unknown table %q", t)
		}
		schemas[t] = sch
	}
	resolve := func(c colRef) (plan.ColRef, error) {
		if c.Table != "" {
			sch, ok := schemas[c.Table]
			if !ok {
				return plan.ColRef{}, fmt.Errorf("sql: table %q not in FROM clause", c.Table)
			}
			if sch.ColIndex(c.Column) < 0 {
				return plan.ColRef{}, fmt.Errorf("sql: table %q has no column %q", c.Table, c.Column)
			}
			return plan.ColRef{Table: c.Table, Column: c.Column}, nil
		}
		owner := ""
		for _, t := range sel.Tables {
			if schemas[t].ColIndex(c.Column) >= 0 {
				if owner != "" {
					return plan.ColRef{}, fmt.Errorf("sql: column %q is ambiguous (%s and %s)", c.Column, owner, t)
				}
				owner = t
			}
		}
		if owner == "" {
			return plan.ColRef{}, fmt.Errorf("sql: no table in FROM has column %q", c.Column)
		}
		return plan.ColRef{Table: owner, Column: c.Column}, nil
	}

	q := &plan.Query{Name: name, Tables: sel.Tables, Limit: sel.Limit}
	for _, c := range sel.Where {
		left, err := resolve(c.Left)
		if err != nil {
			return nil, err
		}
		if c.Right != nil {
			right, err := resolve(*c.Right)
			if err != nil {
				return nil, err
			}
			if left.Table == right.Table {
				return nil, fmt.Errorf("sql: same-table column equality %s = %s not supported", left, right)
			}
			q.Joins = append(q.Joins, plan.EquiJoin{
				LeftTable: left.Table, LeftColumn: left.Column,
				RightTable: right.Table, RightColumn: right.Column,
			})
			continue
		}
		q.Preds = append(q.Preds, plan.Pred{
			Table: left.Table, Column: left.Column,
			Op: c.Op, Lo: c.Lo, Hi: c.Hi,
		})
	}
	for _, item := range sel.Items {
		if item.Star {
			continue
		}
		if !item.IsAgg {
			if _, err := resolve(item.Col); err != nil {
				return nil, err
			}
			continue
		}
		agg := plan.Agg{Func: item.Agg}
		if item.Col.Column != "" {
			ref, err := resolve(item.Col)
			if err != nil {
				return nil, err
			}
			agg.Table, agg.Column = ref.Table, ref.Column
		}
		q.Aggs = append(q.Aggs, agg)
	}
	for _, g := range sel.GroupBy {
		ref, err := resolve(g)
		if err != nil {
			return nil, err
		}
		q.GroupBy = append(q.GroupBy, ref)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// Exec applies a script of DDL and INSERT statements to the database
// (uncharged bulk operations) and returns any SELECTs compiled to queries.
// It is the loading path for user-supplied workload files.
func Exec(db *engine.DB, script string) ([]*plan.Query, error) {
	stmts, err := Parse(script)
	if err != nil {
		return nil, err
	}
	var queries []*plan.Query
	for i, s := range stmts {
		switch st := s.(type) {
		case *CreateTableStmt:
			if _, err := db.CreateTable(st.Name, types.NewSchema(st.Columns...), st.PrimaryKey); err != nil {
				return nil, err
			}
		case *CreateIndexStmt:
			if _, err := db.CreateIndex(st.Name, st.Table, st.Columns, st.Unique); err != nil {
				return nil, err
			}
		case *InsertStmt:
			for _, row := range st.Rows {
				if err := db.Load(st.Table, row); err != nil {
					return nil, err
				}
			}
		case *SelectStmt:
			q, err := Compile(st, db, fmt.Sprintf("q%d", i+1))
			if err != nil {
				return nil, err
			}
			queries = append(queries, q)
		default:
			return nil, fmt.Errorf("sql: unsupported statement %T", s)
		}
	}
	return queries, nil
}

// ParseWorkload compiles a script of SELECT statements (only) against an
// already-built database into a query list, preserving order.
func ParseWorkload(db *engine.DB, script string) ([]*plan.Query, error) {
	stmts, err := Parse(script)
	if err != nil {
		return nil, err
	}
	var queries []*plan.Query
	for i, s := range stmts {
		sel, ok := s.(*SelectStmt)
		if !ok {
			return nil, fmt.Errorf("sql: workload statement %d is %T, want SELECT", i+1, s)
		}
		q, err := Compile(sel, db, fmt.Sprintf("q%d", i+1))
		if err != nil {
			return nil, err
		}
		queries = append(queries, q)
	}
	return queries, nil
}
