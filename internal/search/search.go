// Package search is the shared layout-search engine behind DOT, exhaustive
// search and the SLA-relaxing wrappers (paper §3, §4.4.3, §4.5.3). All of
// them reduce to the same inner loop — estimate a candidate layout, price
// it, check capacity and the SLA — which this package implements once, with
//
//   - a memo table keyed by the canonical layout hash (catalog.Layout.Key),
//     so repeated sweeps (OptimizeBest's two policies, SLA halving) never
//     estimate the same layout twice;
//   - a bounded worker pool that fans independent candidate evaluations out
//     across goroutines (estimators must be safe for concurrent use — see
//     the workload.Estimator contract); and
//   - an optional admissible lower-bound hook (LowerBound) that lets
//     exhaustive enumeration prune whole assignment subtrees whose TOC
//     floor already exceeds the incumbent.
//
// Results are deterministic regardless of worker count: candidates carry
// their enumeration index, and ties on TOC resolve to the lowest index,
// which reproduces the sequential first-found-wins rule exactly.
package search

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dotprov/internal/catalog"
	"dotprov/internal/workload"
)

// Config assembles an Engine. Est and Cost are required; CapacityOK may be
// nil (every layout then passes the capacity check).
type Config struct {
	// Est predicts workload metrics for a candidate layout. It is called at
	// most once per distinct layout; when Workers > 1 it must be safe for
	// concurrent use.
	Est workload.Estimator
	// Cost prices the estimated metrics under the layout (the TOC model).
	Cost func(m workload.Metrics, l catalog.Layout) (float64, error)
	// CapacityOK reports whether the layout fits the box.
	CapacityOK func(l catalog.Layout) bool
	// Workers bounds the evaluation fan-out. Values below 2 select the
	// sequential path (no goroutines, no concurrent estimator use).
	Workers int
	// Budget optionally shares one worker budget across engines: when set it
	// overrides Workers, and concurrent estimator invocations across every
	// engine built on the same Budget are bounded at its width. Provisioning
	// sweeps use this so N candidate searches in flight cannot oversubscribe
	// the machine N-fold.
	Budget *Budget
	// MemoLimit bounds the number of memo entries the engine retains, so a
	// near-bound exhaustive enumeration (up to millions of distinct
	// layouts, each entry holding a layout clone and metrics) cannot
	// exhaust memory. Once full, further distinct layouts are evaluated
	// without caching — results are unchanged, revisits just pay the
	// estimator again. 0 selects DefaultMemoLimit; negative means
	// unlimited.
	MemoLimit int
}

// DefaultMemoLimit caps the memo at 2^18 entries — enough to fully cache a
// 3^11 exhaustive space or any realistic DOT sweep, while bounding worst-
// case retention to a few hundred MB.
const DefaultMemoLimit = 1 << 18

// Eval is one candidate's constraint-free evaluation: everything about the
// layout that does not depend on the SLA. Feasibility against a concrete
// constraint set is checked per use (Feasible), so a memoized Eval stays
// valid across OptimizeBest's sweeps and the relaxing loops' SLA halvings.
type Eval struct {
	Layout     catalog.Layout
	Metrics    workload.Metrics
	TOCCents   float64
	CapacityOK bool
}

// Feasible reports whether the evaluated layout fits the box and meets the
// performance constraints.
func (e Eval) Feasible(cons workload.Constraints) bool {
	return e.CapacityOK && cons.Satisfied(e.Metrics)
}

// Stats summarises an engine's work so far.
type Stats struct {
	// Evaluated counts Evaluate requests (memo hits included): the
	// "layouts investigated" number the paper reports.
	Evaluated int
	// EstimatorCalls counts actual estimator invocations (memo misses).
	EstimatorCalls int
}

// MemoHits is the number of evaluations answered from the memo table.
func (s Stats) MemoHits() int { return s.Evaluated - s.EstimatorCalls }

// Sub returns the work done since an earlier snapshot.
func (s Stats) Sub(o Stats) Stats {
	return Stats{Evaluated: s.Evaluated - o.Evaluated, EstimatorCalls: s.EstimatorCalls - o.EstimatorCalls}
}

type entry struct {
	once sync.Once
	ev   Eval
	err  error
}

// Engine evaluates candidate layouts through the memoized
// estimate → price → check pipeline. An Engine is safe for concurrent use;
// share one across sweeps to share its memo table. Layouts passed to an
// Engine are retained in the memo and must not be mutated afterwards.
type Engine struct {
	cfg  Config
	mu   sync.Mutex
	memo map[string]*entry
	// sem bounds concurrent estimator invocations at Workers across ALL
	// concurrent operations on the engine — concurrent sweeps sharing one
	// engine (OptimizeBest) cannot oversubscribe past the configured width.
	sem       chan struct{}
	evaluated atomic.Int64
	estCalls  atomic.Int64
}

// New builds an engine. It returns an error when the config lacks the
// estimator or the cost model.
func New(cfg Config) (*Engine, error) {
	if cfg.Est == nil || cfg.Cost == nil {
		return nil, fmt.Errorf("search: Config requires Est and Cost")
	}
	e := &Engine{cfg: cfg, memo: make(map[string]*entry)}
	if cfg.Budget != nil {
		e.sem = cfg.Budget.sem
	} else if w := e.Workers(); w > 1 {
		e.sem = make(chan struct{}, w)
	}
	return e, nil
}

// Workers returns the effective fan-out width (the shared budget's width
// when one is configured).
func (e *Engine) Workers() int {
	if e.cfg.Budget != nil {
		return e.cfg.Budget.Workers()
	}
	if e.cfg.Workers < 1 {
		return 1
	}
	return e.cfg.Workers
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Evaluated:      int(e.evaluated.Load()),
		EstimatorCalls: int(e.estCalls.Load()),
	}
}

func (e *Engine) memoLimit() int {
	switch {
	case e.cfg.MemoLimit < 0:
		return int(^uint(0) >> 1) // unlimited
	case e.cfg.MemoLimit == 0:
		return DefaultMemoLimit
	default:
		return e.cfg.MemoLimit
	}
}

// measure runs the estimate → price → capacity pipeline once, uncached.
func (e *Engine) measure(l catalog.Layout) (Eval, error) {
	if e.sem != nil {
		e.sem <- struct{}{}
		defer func() { <-e.sem }()
	}
	e.estCalls.Add(1)
	m, err := e.cfg.Est.Estimate(l)
	if err != nil {
		return Eval{}, err
	}
	toc, err := e.cfg.Cost(m, l)
	if err != nil {
		return Eval{}, err
	}
	return Eval{
		Layout:     l,
		Metrics:    m,
		TOCCents:   toc,
		CapacityOK: e.cfg.CapacityOK == nil || e.cfg.CapacityOK(l),
	}, nil
}

// Evaluate runs one layout through the pipeline, answering from the memo
// when the layout (by canonical key) has been seen before. Errors are
// memoized too: a layout the estimator or cost model rejects once is
// rejected on every revisit without re-invoking them. When the memo is at
// its limit, new layouts are evaluated without being retained.
func (e *Engine) Evaluate(l catalog.Layout) (Eval, error) {
	e.evaluated.Add(1)
	key := l.Key()
	e.mu.Lock()
	ent, ok := e.memo[key]
	if !ok {
		if len(e.memo) >= e.memoLimit() {
			e.mu.Unlock()
			return e.measure(l)
		}
		ent = &entry{}
		e.memo[key] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		ent.ev, ent.err = e.measure(l)
	})
	return ent.ev, ent.err
}

// EvaluateAll evaluates the candidates, fanning out across the worker pool,
// and returns the evaluations in input order. On error it returns the
// lowest-index failure, so error reporting is deterministic too.
func (e *Engine) EvaluateAll(layouts []catalog.Layout) ([]Eval, error) {
	evs := make([]Eval, len(layouts))
	errs := make([]error, len(layouts))
	if err := Parallel(e.Workers(), len(layouts), func(i int) error {
		evs[i], errs[i] = e.Evaluate(layouts[i])
		return nil
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return evs, nil
}

// Parallel runs fn(i) for every i in [0, n) on up to `workers` goroutines
// and returns the lowest-index error. With workers < 2 it runs inline, in
// order, stopping at the first error.
func Parallel(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers < 2 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next int64 = -1
		mu   sync.Mutex
		wg   sync.WaitGroup
	)
	firstErr := error(nil)
	firstIdx := n
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
