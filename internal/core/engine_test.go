package core

import (
	"testing"

	"dotprov/internal/catalog"
	"dotprov/internal/device"
	"dotprov/internal/workload"
)

// TestParallelSearchMatchesSequential is the determinism contract of the
// shared search engine: every entry point must return byte-identical
// Layout/TOCCents/Feasible (and Evaluated) results at any worker-pool
// width.
func TestParallelSearchMatchesSequential(t *testing.T) {
	type outcome struct {
		layout   catalog.Layout
		toc      float64
		feasible bool
		eval     int
	}
	run := func(t *testing.T, workers int) map[string]outcome {
		t.Helper()
		f := newFix(t)
		in := f.input()
		in.Workers = workers
		out := make(map[string]outcome)
		record := func(name string, res *Result, err error) {
			if err != nil {
				t.Fatalf("%s (workers=%d): %v", name, workers, err)
			}
			out[name] = outcome{res.Layout, res.TOCCents, res.Feasible, res.Evaluated}
		}
		for _, sla := range []float64{0.5, 0.25} {
			opts := Options{RelativeSLA: sla}
			res, err := Optimize(in, opts)
			record("optimize", res, err)
			res, err = OptimizeBest(in, opts)
			record("best", res, err)
			res, err = Exhaustive(in, opts)
			record("exhaustive", res, err)
			res, err = ExhaustivePartial(in, opts,
				[]catalog.ObjectID{f.ids["big"], f.ids["big_pkey"]},
				catalog.NewUniformLayout(f.cat, device.HSSD))
			record("partial", res, err)
		}
		return out
	}
	seq := run(t, 1)
	par := run(t, 8)
	for name, want := range seq {
		got := par[name]
		if !got.layout.Equal(want.layout) || got.toc != want.toc ||
			got.feasible != want.feasible || got.eval != want.eval {
			t.Errorf("%s: parallel result differs: %+v vs sequential %+v", name, got, want)
		}
	}
}

// TestOptimizeBestSharesMemo is the economic point of the shared engine:
// the second sweep revisits the first's evaluations, so OptimizeBest must
// estimate strictly fewer distinct layouts than two independent Optimize
// runs — while still reporting the summed Evaluated count.
func TestOptimizeBestSharesMemo(t *testing.T) {
	f := newFix(t)
	in := f.input()
	opts := Options{RelativeSLA: 0.5}
	a, err := Optimize(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	greedy := opts
	greedy.GreedyApply = true
	b, err := Optimize(in, greedy)
	if err != nil {
		t.Fatal(err)
	}
	best, err := OptimizeBest(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	separate := a.EstimatorCalls + b.EstimatorCalls
	if best.EstimatorCalls >= separate {
		t.Fatalf("memoized OptimizeBest made %d estimator calls, separate sweeps %d — memo not shared",
			best.EstimatorCalls, separate)
	}
	if best.EstimatorCalls <= 0 || best.EstimatorCalls > best.Evaluated {
		t.Fatalf("EstimatorCalls %d out of range (Evaluated %d)", best.EstimatorCalls, best.Evaluated)
	}
	if best.Evaluated != a.Evaluated+b.Evaluated {
		t.Fatalf("Evaluated %d, want summed %d", best.Evaluated, a.Evaluated+b.Evaluated)
	}
	if best.PlanTime <= 0 {
		t.Fatal("OptimizeBest must report the summed PlanTime")
	}
}

// TestRelaxingClampsAtMinSLA: when no layout is ever feasible the halving
// loops must walk down to minSLA, report infeasibility there, and stop —
// even for a non-positive minSLA, which previously could loop forever.
func TestRelaxingClampsAtMinSLA(t *testing.T) {
	impossible := func(t *testing.T) Input {
		f := newFix(t)
		for _, c := range f.box.Classes() {
			f.box.SetCapacity(c, 1)
		}
		return f.input()
	}
	res, sla, err := OptimizeRelaxing(impossible(t), Options{RelativeSLA: 0.8}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("nothing fits; result must be infeasible")
	}
	if sla != 0.05 {
		t.Fatalf("DOT relaxation stopped at SLA %g, want the 0.05 clamp", sla)
	}
	res, sla, err = ExhaustiveRelaxing(impossible(t), Options{RelativeSLA: 0.8}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("nothing fits; ES result must be infeasible")
	}
	if sla != 0.05 {
		t.Fatalf("ES relaxation stopped at SLA %g, want the 0.05 clamp", sla)
	}
	// Degenerate minSLA values must still terminate (the internal floor).
	if _, sla, err = OptimizeRelaxing(impossible(t), Options{RelativeSLA: 0.8}, 0); err != nil {
		t.Fatal(err)
	}
	if sla <= 0 {
		t.Fatalf("relaxation with minSLA 0 returned SLA %g", sla)
	}
}

// TestRelaxingSharesMemoAcrossLevels: halving the SLA re-checks memoized
// evaluations instead of re-estimating the space, so a relaxing run that
// visits k SLA levels must estimate far fewer than k full enumerations.
func TestRelaxingSharesMemoAcrossLevels(t *testing.T) {
	f := newFix(t)
	for _, c := range f.box.Classes() {
		if c != device.HDDRAID0 {
			f.box.SetCapacity(c, 3e9)
		}
	}
	res, sla, err := ExhaustiveRelaxing(f.input(), Options{RelativeSLA: 0.99}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || sla >= 0.99 {
		t.Fatalf("expected a relaxed feasible result, got feasible=%v sla=%g", res.Feasible, sla)
	}
	if res.Evaluated != 81 {
		t.Fatalf("final round evaluated %d layouts, want 81", res.Evaluated)
	}
	// The final round runs entirely against the memo table warmed by the
	// earlier SLA levels.
	if res.EstimatorCalls != 0 {
		t.Fatalf("final relaxation round made %d estimator calls, want 0 (memo)", res.EstimatorCalls)
	}
}

// TestExhaustivePartialInfeasibleFallbackConsistent: the infeasible report
// must price and estimate the SAME layout (the pinned base) — previously
// the metrics came from L0 while the TOC came from base.
func TestExhaustivePartialInfeasibleFallbackConsistent(t *testing.T) {
	f := newFix(t)
	for _, c := range f.box.Classes() {
		f.box.SetCapacity(c, 1)
	}
	in := f.input()
	// A base that is NOT L0, so the old inconsistency would be visible.
	base := catalog.NewUniformLayout(f.cat, device.LSSD)
	res, err := ExhaustivePartial(in, Options{RelativeSLA: 0.5},
		[]catalog.ObjectID{f.ids["big"]}, base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("nothing fits; result must be infeasible")
	}
	if !res.Layout.Equal(base) {
		t.Fatal("fallback must report the pinned base layout")
	}
	wantMetrics, err := in.Est.Estimate(base)
	if err != nil {
		t.Fatal(err)
	}
	wantTOC, err := workload.TOCCents(wantMetrics, base, f.cat, f.box)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Elapsed != wantMetrics.Elapsed {
		t.Fatalf("fallback metrics estimated under %v, want under base (elapsed %v vs %v)",
			res.Layout, res.Metrics.Elapsed, wantMetrics.Elapsed)
	}
	if res.TOCCents != wantTOC {
		t.Fatalf("fallback TOC %g, want %g (priced under base)", res.TOCCents, wantTOC)
	}
}

// TestExhaustivePrunedMatchesUnpruned: the storage-floor lower bound must
// cut candidates without changing the recommendation.
func TestExhaustivePrunedMatchesUnpruned(t *testing.T) {
	f := newFix(t)
	plain, err := Exhaustive(f.input(), Options{RelativeSLA: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Evaluated != 81 {
		t.Fatalf("unpruned ES evaluated %d, want 81", plain.Evaluated)
	}
	in := f.input()
	in.LowerBound = in.StorageFloorBound(f.prof)
	if in.LowerBound == nil {
		t.Fatal("linear cost model should yield a bound")
	}
	pruned, err := Exhaustive(in, Options{RelativeSLA: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if !pruned.Layout.Equal(plain.Layout) || pruned.TOCCents != plain.TOCCents ||
		pruned.Feasible != plain.Feasible {
		t.Fatalf("pruned ES result differs: %.6g %v vs %.6g %v",
			pruned.TOCCents, pruned.Layout, plain.TOCCents, plain.Layout)
	}
	if pruned.Evaluated > plain.Evaluated {
		t.Fatalf("pruning evaluated more candidates (%d) than plain ES (%d)", pruned.Evaluated, plain.Evaluated)
	}
	t.Logf("pruned ES evaluated %d of %d candidates", pruned.Evaluated, plain.Evaluated)
	// A custom cost model disables the linear-model floor.
	in.LayoutCost = func(l catalog.Layout) (float64, error) { return 1, nil }
	if in.StorageFloorBound(f.prof) != nil {
		t.Fatal("custom cost model must disable the storage floor")
	}
}
