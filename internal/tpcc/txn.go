package tpcc

import (
	"fmt"
	"math/rand"

	"dotprov/internal/engine"
	"dotprov/internal/pagestore"
	"dotprov/internal/types"
)

// txnState carries per-worker transaction context.
type txnState struct {
	cfg  Config
	r    *rand.Rand
	w    int // home warehouse
	seq  int64
	last struct{ newOrders int64 }
}

func ival(v types.Value) int64   { return v.Int }
func fval(v types.Value) float64 { return v.F }

// NewOrderTxn is the TPC-C New-Order transaction: the tpmC unit of work.
// 1% of transactions abort on an invalid item (the work still executes, as
// in the benchmark).
func (t *txnState) NewOrder(sess *engine.Session) error {
	cfg := t.cfg
	d := t.r.Intn(cfg.DistrictsPerW)
	// District: read and bump d_next_o_id.
	dTuples, dRids, err := sess.LookupEq("district_pkey", types.NewInt(int64(t.w)), types.NewInt(int64(d)))
	if err != nil {
		return err
	}
	if len(dTuples) != 1 {
		return fmt.Errorf("tpcc: district (%d,%d) missing", t.w, d)
	}
	dist := dTuples[0].Clone()
	oid := ival(dist[4])
	dist[4] = types.NewInt(oid + 1)
	if err := sess.UpdateByRID("district", dRids[0], dist); err != nil {
		return err
	}
	// Warehouse tax, customer discount.
	if _, _, err := sess.LookupEq("warehouse_pkey", types.NewInt(int64(t.w))); err != nil {
		return err
	}
	c := nonUniform(t.r, 255, cfg.CustomersPerDist-1)
	if _, _, err := sess.LookupEq("customer_pkey",
		types.NewInt(int64(t.w)), types.NewInt(int64(d)), types.NewInt(int64(c))); err != nil {
		return err
	}
	olCnt := 5 + t.r.Intn(6)
	// Order + new_order.
	if err := sess.Insert("orders", types.Tuple{
		types.NewInt(int64(t.w)), types.NewInt(int64(d)), types.NewInt(oid),
		types.NewInt(int64(c)), types.NewDate(11000 + t.seq), types.NewInt(0), types.NewInt(int64(olCnt)),
	}); err != nil {
		return err
	}
	if err := sess.Insert("new_order", types.Tuple{
		types.NewInt(int64(t.w)), types.NewInt(int64(d)), types.NewInt(oid),
	}); err != nil {
		return err
	}
	abort := t.r.Intn(100) == 0
	for ol := 0; ol < olCnt; ol++ {
		item := t.r.Intn(cfg.Items)
		if abort && ol == olCnt-1 {
			// Invalid item number: the transaction rolls back after having
			// done its reads; we simply stop issuing the remaining writes.
			break
		}
		if _, _, err := sess.LookupEq("item_pkey", types.NewInt(int64(item))); err != nil {
			return err
		}
		sw := t.w
		if t.cfg.Warehouses > 1 && t.r.Intn(100) == 0 {
			sw = t.r.Intn(cfg.Warehouses) // remote stock (1%)
		}
		sTuples, sRids, err := sess.LookupEq("stock_pkey", types.NewInt(int64(sw)), types.NewInt(int64(item)))
		if err != nil {
			return err
		}
		if len(sTuples) == 1 {
			st := sTuples[0].Clone()
			q := ival(st[2])
			if q > 10 {
				st[2] = types.NewInt(q - int64(1+t.r.Intn(5)))
			} else {
				st[2] = types.NewInt(q + 91)
			}
			st[3] = types.NewInt(ival(st[3]) + 1)
			st[4] = types.NewInt(ival(st[4]) + 1)
			if err := sess.UpdateByRID("stock", sRids[0], st); err != nil {
				return err
			}
		}
		if err := sess.Insert("order_line", types.Tuple{
			types.NewInt(int64(t.w)), types.NewInt(int64(d)), types.NewInt(oid),
			types.NewInt(int64(ol)), types.NewInt(int64(item)),
			types.NewInt(5), types.NewFloat(t.r.Float64() * 9999), types.NewDate(0),
		}); err != nil {
			return err
		}
	}
	t.seq++
	t.last.newOrders++
	return nil
}

// Payment updates warehouse/district YTD, pays a customer (40% located by
// last name through i_customer) and appends a history row.
func (t *txnState) Payment(sess *engine.Session) error {
	cfg := t.cfg
	d := t.r.Intn(cfg.DistrictsPerW)
	amount := 1 + t.r.Float64()*4999

	wT, wR, err := sess.LookupEq("warehouse_pkey", types.NewInt(int64(t.w)))
	if err != nil {
		return err
	}
	if len(wT) == 1 {
		w := wT[0].Clone()
		w[3] = types.NewFloat(fval(w[3]) + amount)
		if err := sess.UpdateByRID("warehouse", wR[0], w); err != nil {
			return err
		}
	}
	dT, dR, err := sess.LookupEq("district_pkey", types.NewInt(int64(t.w)), types.NewInt(int64(d)))
	if err != nil {
		return err
	}
	if len(dT) == 1 {
		ds := dT[0].Clone()
		ds[3] = types.NewFloat(fval(ds[3]) + amount)
		if err := sess.UpdateByRID("district", dR[0], ds); err != nil {
			return err
		}
	}

	var cT []types.Tuple
	var cR []pagestore.RID
	if t.r.Intn(100) < 60 {
		c := nonUniform(t.r, 255, cfg.CustomersPerDist-1)
		cT, cR, err = sess.LookupEq("customer_pkey",
			types.NewInt(int64(t.w)), types.NewInt(int64(d)), types.NewInt(int64(c)))
		if err != nil {
			return err
		}
	} else {
		last := LastName(nonUniform(t.r, 255, 999))
		cT, cR, err = sess.LookupEq("i_customer",
			types.NewInt(int64(t.w)), types.NewInt(int64(d)), types.NewString(last))
		if err != nil {
			return err
		}
	}
	if len(cT) > 0 {
		mid := len(cT) / 2 // TPC-C picks the median match
		cu := cT[mid].Clone()
		cu[5] = types.NewFloat(fval(cu[5]) - amount)
		cu[6] = types.NewFloat(fval(cu[6]) + amount)
		cu[7] = types.NewInt(ival(cu[7]) + 1)
		if err := sess.UpdateByRID("customer", cR[mid], cu); err != nil {
			return err
		}
		if err := sess.Insert("history", types.Tuple{
			types.NewInt(int64(t.w)), types.NewInt(int64(d)), cu[2],
			types.NewDate(11000 + t.seq), types.NewFloat(amount),
		}); err != nil {
			return err
		}
	}
	t.seq++
	return nil
}

// OrderStatus reads a customer's most recent order and its lines.
func (t *txnState) OrderStatus(sess *engine.Session) error {
	cfg := t.cfg
	d := t.r.Intn(cfg.DistrictsPerW)
	c := nonUniform(t.r, 255, cfg.CustomersPerDist-1)
	if t.r.Intn(100) >= 60 {
		last := LastName(nonUniform(t.r, 255, 999))
		tu, _, err := sess.LookupEq("i_customer",
			types.NewInt(int64(t.w)), types.NewInt(int64(d)), types.NewString(last))
		if err != nil {
			return err
		}
		if len(tu) > 0 {
			c = int(ival(tu[len(tu)/2][2]))
		}
	} else if _, _, err := sess.LookupEq("customer_pkey",
		types.NewInt(int64(t.w)), types.NewInt(int64(d)), types.NewInt(int64(c))); err != nil {
		return err
	}
	// Latest order through i_orders.
	orders, _, err := sess.LookupEq("i_orders",
		types.NewInt(int64(t.w)), types.NewInt(int64(d)), types.NewInt(int64(c)))
	if err != nil {
		return err
	}
	if len(orders) == 0 {
		return nil
	}
	latest := orders[0]
	for _, o := range orders[1:] {
		if ival(o[2]) > ival(latest[2]) {
			latest = o
		}
	}
	_, _, err = sess.LookupEq("order_line_pkey",
		types.NewInt(int64(t.w)), types.NewInt(int64(d)), latest[2])
	return err
}

// Delivery processes the oldest undelivered order in every district.
func (t *txnState) Delivery(sess *engine.Session) error {
	cfg := t.cfg
	carrier := types.NewInt(int64(1 + t.r.Intn(10)))
	for d := 0; d < cfg.DistrictsPerW; d++ {
		nos, noRids, err := sess.LookupEq("new_order_pkey",
			types.NewInt(int64(t.w)), types.NewInt(int64(d)))
		if err != nil {
			return err
		}
		if len(nos) == 0 {
			continue
		}
		oldest := 0
		for i := range nos {
			if ival(nos[i][2]) < ival(nos[oldest][2]) {
				oldest = i
			}
		}
		oid := nos[oldest][2]
		if err := sess.DeleteByRID("new_order", noRids[oldest]); err != nil {
			return err
		}
		oT, oR, err := sess.LookupEq("orders_pkey",
			types.NewInt(int64(t.w)), types.NewInt(int64(d)), oid)
		if err != nil {
			return err
		}
		if len(oT) != 1 {
			continue
		}
		ord := oT[0].Clone()
		ord[5] = carrier
		if err := sess.UpdateByRID("orders", oR[0], ord); err != nil {
			return err
		}
		ols, _, err := sess.LookupEq("order_line_pkey",
			types.NewInt(int64(t.w)), types.NewInt(int64(d)), oid)
		if err != nil {
			return err
		}
		var total float64
		for _, ol := range ols {
			total += fval(ol[6])
		}
		cT, cRids, err := sess.LookupEq("customer_pkey",
			types.NewInt(int64(t.w)), types.NewInt(int64(d)), ord[3])
		if err != nil {
			return err
		}
		if len(cT) == 1 {
			cu := cT[0].Clone()
			cu[5] = types.NewFloat(fval(cu[5]) + total)
			if err := sess.UpdateByRID("customer", cRids[0], cu); err != nil {
				return err
			}
		}
	}
	t.seq++
	return nil
}

// StockLevel examines the stock of items in the district's last 20 orders.
func (t *txnState) StockLevel(sess *engine.Session) error {
	cfg := t.cfg
	d := t.r.Intn(cfg.DistrictsPerW)
	threshold := int64(10 + t.r.Intn(11))
	dT, _, err := sess.LookupEq("district_pkey", types.NewInt(int64(t.w)), types.NewInt(int64(d)))
	if err != nil {
		return err
	}
	if len(dT) != 1 {
		return nil
	}
	nextO := ival(dT[0][4])
	seen := map[int64]bool{}
	low := 0
	for o := nextO - 20; o < nextO; o++ {
		if o < 0 {
			continue
		}
		ols, _, err := sess.LookupEq("order_line_pkey",
			types.NewInt(int64(t.w)), types.NewInt(int64(d)), types.NewInt(o))
		if err != nil {
			return err
		}
		for _, ol := range ols {
			item := ival(ol[4])
			if seen[item] {
				continue
			}
			seen[item] = true
			sT, _, err := sess.LookupEq("stock_pkey", types.NewInt(int64(t.w)), types.NewInt(item))
			if err != nil {
				return err
			}
			if len(sT) == 1 && ival(sT[0][2]) < threshold {
				low++
			}
		}
	}
	return nil
}
