// Quickstart: build a tiny database on the paper's Box 1 (HDD RAID 0,
// L-SSD, H-SSD), describe a workload, and ask DOT for the layout that
// minimises the total operating cost under a relative SLA of 0.5.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"dotprov/internal/catalog"
	"dotprov/internal/core"
	"dotprov/internal/device"
	"dotprov/internal/engine"
	"dotprov/internal/plan"
	"dotprov/internal/profiler"
	"dotprov/internal/types"
	"dotprov/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A server with three storage classes, priced and timed per the paper.
	box := device.Box1()
	db := engine.New(box, 256)

	// Schema: an events fact table and a small users table.
	events := types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "user_id", Kind: types.KindInt},
		types.Column{Name: "amount", Kind: types.KindFloat},
	)
	if _, err := db.CreateTable("events", events, []string{"id"}); err != nil {
		return err
	}
	users := types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "name", Kind: types.KindString},
	)
	if _, err := db.CreateTable("users", users, []string{"id"}); err != nil {
		return err
	}

	// Load: 20k events across 500 users.
	for i := 0; i < 500; i++ {
		if err := db.Load("users", types.Tuple{
			types.NewInt(int64(i)), types.NewString(fmt.Sprintf("user-%03d", i)),
		}); err != nil {
			return err
		}
	}
	for i := 0; i < 20000; i++ {
		if err := db.Load("events", types.Tuple{
			types.NewInt(int64(i)), types.NewInt(int64(i % 500)), types.NewFloat(float64(i % 97)),
		}); err != nil {
			return err
		}
	}
	if err := db.SetLayout(catalog.NewUniformLayout(db.Cat, device.HSSD)); err != nil {
		return err
	}
	if err := db.Analyze(); err != nil {
		return err
	}

	// Workload: a reporting scan plus frequent point lookups.
	w := &workload.DSS{Name: "quickstart", Queries: []*plan.Query{
		{
			Name:   "daily-report",
			Tables: []string{"events"},
			Aggs:   []plan.Agg{{Func: plan.Sum, Table: "events", Column: "amount"}, {Func: plan.Count}},
		},
		{
			Name:   "user-lookup",
			Tables: []string{"users"},
			Preds:  []plan.Pred{{Table: "users", Column: "id", Op: plan.Eq, Lo: types.NewInt(42)}},
		},
		{
			Name:   "user-events",
			Tables: []string{"users", "events"},
			Preds: []plan.Pred{{
				Table: "users", Column: "id", Op: plan.Between,
				Lo: types.NewInt(10), Hi: types.NewInt(19),
			}},
			Joins: []plan.EquiJoin{{
				LeftTable: "users", LeftColumn: "id",
				RightTable: "events", RightColumn: "user_id",
			}},
			Aggs: []plan.Agg{{Func: plan.Count}},
		},
	}}

	// Profile the workload on the baseline layouts (paper §3.4) and
	// optimize (paper Procedure 1).
	ps, err := profiler.ProfileDSSEstimates(db, w)
	if err != nil {
		return err
	}
	in := core.Input{Cat: db.Cat, Box: box, Est: w.Estimator(db), Profiles: ps, Concurrency: 1}
	res, err := core.Optimize(in, core.Options{RelativeSLA: 0.5})
	if err != nil {
		return err
	}
	if !res.Feasible {
		return fmt.Errorf("no feasible layout at SLA 0.5")
	}
	fmt.Printf("recommended layout (%d candidates in %v):\n%s",
		res.Evaluated, res.PlanTime.Round(time.Millisecond), res.Layout.String(db.Cat))
	fmt.Printf("estimated workload time: %v, TOC %.4e cents per run\n",
		res.Metrics.Elapsed.Round(time.Millisecond), res.TOCCents)

	// Compare against keeping everything on the H-SSD.
	allFast := catalog.NewUniformLayout(db.Cat, device.HSSD)
	m, err := in.Est.Estimate(allFast)
	if err != nil {
		return err
	}
	toc, err := workload.TOCCents(m, allFast, db.Cat, box)
	if err != nil {
		return err
	}
	fmt.Printf("All H-SSD for comparison: time %v, TOC %.4e cents (%.1fx more expensive)\n",
		m.Elapsed.Round(time.Millisecond), toc, toc/res.TOCCents)
	return nil
}
