// Package profiler implements the paper's profiling phase (§3.4): it
// measures or estimates workload profiles chi^p_r[o] on the baseline
// layouts L_p — one layout per group placement pattern — and packages them
// as the ProfileSet that DOT's move scoring consumes.
//
// Two capture methods exist, matching the paper:
//
//   - estimates from the extended query optimizer (used for TPC-H, §4.4),
//   - an actual test run of the workload (used for TPC-C, §4.5, where one
//     baseline layout suffices because the plans never change).
package profiler

import (
	"fmt"

	"dotprov/internal/core"
	"dotprov/internal/engine"
	"dotprov/internal/iosim"
	"dotprov/internal/workload"
)

// ProfileDSSEstimates builds the profile set for a DSS workload by asking
// the extended optimizer for per-object I/O counts on every baseline
// layout. With M classes and a maximum group size K this plans the workload
// on M^K baselines (the paper's complexity argument for K << N).
func ProfileDSSEstimates(db *engine.DB, w *workload.DSS) (*core.ProfileSet, error) {
	ps := core.NewProfileSet()
	for _, pattern := range core.BaselinePatterns(db.Cat, db.Box) {
		layout := core.BaselineLayout(db.Cat, pattern)
		prof, err := w.EstimateProfile(db, layout)
		if err != nil {
			return nil, fmt.Errorf("profiler: baseline %v: %w", pattern, err)
		}
		ps.AddPattern(pattern, prof)
	}
	return ps, nil
}

// ProfileDSSTestRuns builds the profile set by actually executing the
// workload on every baseline layout (exact counts, higher profiling cost).
func ProfileDSSTestRuns(db *engine.DB, w *workload.DSS) (*core.ProfileSet, error) {
	ps := core.NewProfileSet()
	saved := db.Layout()
	defer db.SetLayout(saved)
	for _, pattern := range core.BaselinePatterns(db.Cat, db.Box) {
		layout := core.BaselineLayout(db.Cat, pattern)
		if err := db.SetLayout(layout); err != nil {
			return nil, err
		}
		_, prof, err := w.Run(db)
		if err != nil {
			return nil, fmt.Errorf("profiler: test run on %v: %w", pattern, err)
		}
		ps.AddPattern(pattern, prof)
	}
	return ps, nil
}

// ProfileSingle wraps one measured profile as a profile set answering every
// pattern — the paper's TPC-C shortcut (§4.5.1: "we only need one simple
// layout: namely, the All H-SSD case", because the plans stay random-access
// whatever the placement).
func ProfileSingle(prof iosim.Profile) *core.ProfileSet {
	ps := core.NewProfileSet()
	ps.SetSingle(prof)
	return ps
}
