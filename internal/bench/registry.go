package bench

import (
	"fmt"
	"io"
	"sort"

	"dotprov/internal/core"
	"dotprov/internal/provision"
)

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, opts Options) error
}

// Experiments returns the registry of every table and figure, keyed by the
// ids cmd/dotbench accepts.
func Experiments() map[string]Experiment {
	wrap := func(f func(io.Writer, Options) (*FigureResult, error)) func(io.Writer, Options) error {
		return func(w io.Writer, o Options) error {
			_, err := f(w, o)
			return err
		}
	}
	return map[string]Experiment{
		"table1": {
			ID: "table1", Title: "Table 1: cost and I/O profiles of the storage classes",
			Run: func(w io.Writer, _ Options) error { return Table1(w) },
		},
		"table2": {
			ID: "table2", Title: "Table 2: storage class specifications",
			Run: func(w io.Writer, _ Options) error { return Table2(w) },
		},
		"fig3": {
			ID: "fig3", Title: "Figure 3 + Figure 4: original TPC-H, SLA 0.5",
			Run: wrap(Figure3),
		},
		"fig5": {
			ID: "fig5", Title: "Figure 5 + Figure 6: modified TPC-H, SLA 0.5",
			Run: wrap(Figure5),
		},
		"fig7": {
			ID: "fig7", Title: "Figure 7: modified TPC-H, SLA 0.25",
			Run: wrap(Figure7),
		},
		"es-tpch": {
			ID: "es-tpch", Title: "Sec 4.4.3: DOT vs exhaustive search (TPC-H subset)",
			Run: wrap(Sec443),
		},
		"fig8": {
			ID: "fig8", Title: "Figure 8 + Table 3: TPC-C, DOT under relaxing SLAs",
			Run: wrap(Figure8),
		},
		"fig9": {
			ID: "fig9", Title: "Figure 9: ES vs DOT on TPC-C with capacity limits",
			Run: wrap(Figure9),
		},
		"provision": {
			ID: "provision", Title: "Sec 5.1: generalized provisioning",
			Run: wrap(Provision),
		},
		"skew": {
			ID: "skew", Title: "Partition granularity: object vs partitioned DOT on the Zipf hot/cold fixture",
			Run: wrap(Skew),
		},
		"discrete": {
			ID: "discrete", Title: "Sec 5.2: discrete-sized storage cost model",
			Run: func(w io.Writer, o Options) error {
				_, err := Discrete(w, o, []float64{0, 0.5, 1}, discreteModel)
				return err
			},
		},
	}
}

// discreteModel installs the §5.2 cost model into a DOT input.
func discreteModel(in core.Input, alpha float64) (core.Input, error) {
	model, err := provision.DiscreteCostModel(in.Cat, in.Box, alpha)
	if err != nil {
		return core.Input{}, err
	}
	in.LayoutCost = model
	return in, nil
}

// IDs returns the experiment ids in stable order.
func IDs() []string {
	var out []string
	for id := range Experiments() {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer, opts Options) error {
	for _, id := range IDs() {
		e := Experiments()[id]
		fmt.Fprintf(w, "\n######## %s ########\n", e.Title)
		if err := e.Run(w, opts); err != nil {
			return fmt.Errorf("bench: experiment %s: %w", id, err)
		}
	}
	return nil
}
