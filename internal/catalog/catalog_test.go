package catalog

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"dotprov/internal/device"
	"dotprov/internal/types"
)

func demoCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := New()
	sch := types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "name", Kind: types.KindString},
	)
	tab, err := c.CreateTable("customer", sch, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateIndex("customer_pkey", tab.ID, []string{"id"}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateIndex("i_customer", tab.ID, []string{"name"}, false); err != nil {
		t.Fatal(err)
	}
	sch2 := types.NewSchema(types.Column{Name: "k", Kind: types.KindInt})
	if _, err := c.CreateTable("orders", sch2, []string{"k"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateAux("temp", KindTemp, 1e6); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCreateAndLookup(t *testing.T) {
	c := demoCatalog(t)
	tab, err := c.TableByName("customer")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Indexes) != 2 {
		t.Fatalf("customer has %d indexes, want 2", len(tab.Indexes))
	}
	ix, err := c.IndexByName("i_customer")
	if err != nil {
		t.Fatal(err)
	}
	if ix.TableID != tab.ID || ix.Unique {
		t.Fatalf("i_customer metadata wrong: %+v", ix)
	}
	if c.Lookup("nope") != nil {
		t.Fatal("Lookup of missing object should be nil")
	}
	if _, err := c.TableByName("i_customer"); err == nil {
		t.Fatal("TableByName on an index should fail")
	}
}

func TestCreateErrors(t *testing.T) {
	c := demoCatalog(t)
	sch := types.NewSchema(types.Column{Name: "x", Kind: types.KindInt})
	if _, err := c.CreateTable("customer", sch, nil); err == nil {
		t.Fatal("duplicate table name should fail")
	}
	if _, err := c.CreateTable("bad", sch, []string{"missing"}); err == nil {
		t.Fatal("PK on missing column should fail")
	}
	tab, _ := c.TableByName("customer")
	if _, err := c.CreateIndex("bad_ix", tab.ID, []string{"missing"}, false); err == nil {
		t.Fatal("index on missing column should fail")
	}
	if _, err := c.CreateIndex("bad_ix2", 9999, []string{"id"}, false); err == nil {
		t.Fatal("index on missing table should fail")
	}
	if _, err := c.CreateAux("bad_aux", KindTable, 1); err == nil {
		t.Fatal("CreateAux with table kind should fail")
	}
}

func TestSetSizeConsistency(t *testing.T) {
	c := demoCatalog(t)
	tab, _ := c.TableByName("customer")
	c.SetSize(tab.ID, 12345)
	if c.Object(tab.ID).SizeBytes != 12345 {
		t.Fatal("object size not updated")
	}
	tab2, _ := c.TableByName("customer")
	if tab2.SizeBytes != 12345 {
		t.Fatal("table view size not updated")
	}
	ix, _ := c.IndexByName("customer_pkey")
	c.SetSize(ix.ID, 77)
	ix2, _ := c.IndexByName("customer_pkey")
	if ix2.SizeBytes != 77 {
		t.Fatal("index view size not updated")
	}
	if c.TotalSize() != 12345+77+1e6 {
		t.Fatalf("TotalSize = %d", c.TotalSize())
	}
}

func TestGroups(t *testing.T) {
	c := demoCatalog(t)
	gs := c.Groups()
	// customer(+2 idx), orders, temp -> 3 groups.
	if len(gs) != 3 {
		t.Fatalf("got %d groups, want 3", len(gs))
	}
	if gs[0].Size() != 3 {
		t.Fatalf("customer group size = %d, want 3 (table + 2 indexes)", gs[0].Size())
	}
	tab, _ := c.TableByName("customer")
	if gs[0].Objects[0] != tab.ID {
		t.Fatal("table must come first in its group")
	}
	if gs[1].Size() != 1 || gs[2].Size() != 1 {
		t.Fatal("orders and temp should be singletons")
	}
}

func TestObjectsDeterministicOrder(t *testing.T) {
	c := demoCatalog(t)
	objs := c.Objects()
	for i := 1; i < len(objs); i++ {
		if objs[i-1].ID >= objs[i].ID {
			t.Fatal("Objects() not sorted by ID")
		}
	}
	if len(c.Tables()) != 2 || len(c.Indexes()) != 2 {
		t.Fatalf("Tables/Indexes counts wrong: %d/%d", len(c.Tables()), len(c.Indexes()))
	}
	if got := len(c.TableIndexes(objs[0].ID)); got != 2 {
		t.Fatalf("TableIndexes = %d, want 2", got)
	}
}

func TestUniformAndSplitLayouts(t *testing.T) {
	c := demoCatalog(t)
	l := NewUniformLayout(c, device.HSSD)
	if len(l) != 5 {
		t.Fatalf("uniform layout has %d entries, want 5", len(l))
	}
	for _, cls := range l {
		if cls != device.HSSD {
			t.Fatal("uniform layout must use one class")
		}
	}
	s := NewSplitLayout(c, device.LSSD, device.HSSD)
	ix, _ := c.IndexByName("customer_pkey")
	tab, _ := c.TableByName("customer")
	if s[ix.ID] != device.HSSD || s[tab.ID] != device.LSSD {
		t.Fatal("split layout should put indexes on index class and data on data class")
	}
}

func TestLayoutCostAndCapacity(t *testing.T) {
	c := demoCatalog(t)
	tab, _ := c.TableByName("customer")
	c.SetSize(tab.ID, 10e9) // 10 GB
	box := device.Box1()
	l := NewUniformLayout(c, device.HSSD)
	cost, err := l.CostCentsPerHour(c, box)
	if err != nil {
		t.Fatal(err)
	}
	wantApprox := box.Device(device.HSSD).PriceCents * (10 + 0.001) // 10GB + 1MB temp
	if diff := cost - wantApprox; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("cost = %g, want ~%g", cost, wantApprox)
	}
	toc, err := l.TOCCents(c, box, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if toc <= 0 || toc >= cost {
		t.Fatalf("TOC for half an hour should be half the hourly cost, got %g vs %g", toc, cost)
	}
	if err := l.CheckCapacity(c, box); err != nil {
		t.Fatalf("10 GB should fit on an 80 GB H-SSD: %v", err)
	}
	// Shrink the H-SSD below the placed bytes.
	if err := box.SetCapacity(device.HSSD, 5e9); err != nil {
		t.Fatal(err)
	}
	if err := l.CheckCapacity(c, box); err == nil {
		t.Fatal("capacity violation not detected")
	}
	// A layout that references a class missing from the box errors out.
	bad := NewUniformLayout(c, device.HDD) // Box 1 has no plain HDD
	if _, err := bad.CostCentsPerHour(c, box); err == nil {
		t.Fatal("cost with missing class should fail")
	}
	if err := bad.CheckCapacity(c, box); err == nil {
		t.Fatal("capacity check with missing class should fail")
	}
}

func TestLayoutCloneEqual(t *testing.T) {
	c := demoCatalog(t)
	l := NewUniformLayout(c, device.HSSD)
	cl := l.Clone()
	if !l.Equal(cl) {
		t.Fatal("clone should equal original")
	}
	tab, _ := c.TableByName("customer")
	cl[tab.ID] = device.LSSD
	if l.Equal(cl) {
		t.Fatal("modified clone should differ")
	}
	if l[tab.ID] != device.HSSD {
		t.Fatal("clone mutated the original")
	}
	if l.Equal(Layout{}) {
		t.Fatal("layouts of different size should differ")
	}
}

func TestLayoutString(t *testing.T) {
	c := demoCatalog(t)
	l := NewSplitLayout(c, device.LSSD, device.HSSD)
	s := l.String(c)
	if !strings.Contains(s, "H-SSD") || !strings.Contains(s, "customer_pkey") {
		t.Fatalf("layout rendering missing content:\n%s", s)
	}
}

// Property: for any assignment of objects to classes in the box, the layout
// cost equals the sum over classes of price x placed bytes.
func TestLayoutCostProperty(t *testing.T) {
	c := demoCatalog(t)
	objs := c.Objects()
	box := device.Box2()
	classes := box.Classes()
	f := func(assign []uint8, sizes []uint32) bool {
		l := make(Layout)
		for i, o := range objs {
			var a uint8
			if i < len(assign) {
				a = assign[i]
			}
			l[o.ID] = classes[int(a)%len(classes)]
			var sz uint32
			if i < len(sizes) {
				sz = sizes[i]
			}
			c.SetSize(o.ID, int64(sz))
		}
		got, err := l.CostCentsPerHour(c, box)
		if err != nil {
			return false
		}
		var want float64
		for _, o := range objs {
			want += box.Device(l[o.ID]).PriceCents * float64(o.SizeBytes) / 1e9
		}
		diff := got - want
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
