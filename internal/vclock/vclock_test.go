package vclock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestZeroValueReady(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", c.Now())
	}
}

func TestAdvance(t *testing.T) {
	var c Clock
	c.Advance(3 * time.Millisecond)
	c.Advance(2 * time.Millisecond)
	if got, want := c.Now(), 5*time.Millisecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestAdvanceNegativeIgnored(t *testing.T) {
	var c Clock
	c.Advance(time.Second)
	c.Advance(-time.Hour)
	if got, want := c.Now(), time.Second; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestReset(t *testing.T) {
	var c Clock
	c.Advance(time.Second)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Now() after Reset = %v, want 0", c.Now())
	}
}

func TestMaxAndSum(t *testing.T) {
	a, b, c := &Clock{}, &Clock{}, &Clock{}
	a.Advance(1 * time.Second)
	b.Advance(3 * time.Second)
	c.Advance(2 * time.Second)
	if got := Max(a, b, c); got != 3*time.Second {
		t.Fatalf("Max = %v, want 3s", got)
	}
	if got := Sum(a, b, c); got != 6*time.Second {
		t.Fatalf("Sum = %v, want 6s", got)
	}
	if got := Max(); got != 0 {
		t.Fatalf("Max() = %v, want 0", got)
	}
}

// Property: the clock is monotonic under any sequence of advances.
func TestMonotonicProperty(t *testing.T) {
	f := func(steps []int32) bool {
		var c Clock
		prev := c.Now()
		for _, s := range steps {
			c.Advance(time.Duration(s) * time.Microsecond)
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Sum equals the sum of the individual clocks and Max is bounded
// by Sum for non-negative advances.
func TestSumMaxProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := &Clock{}, &Clock{}
		x.Advance(time.Duration(a) * time.Millisecond)
		y.Advance(time.Duration(b) * time.Millisecond)
		return Sum(x, y) == x.Now()+y.Now() && Max(x, y) <= Sum(x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
