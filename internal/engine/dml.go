package engine

import (
	"fmt"

	"dotprov/internal/bufferpool"
	"dotprov/internal/catalog"
	"dotprov/internal/device"
	"dotprov/internal/pagestore"
	"dotprov/internal/plan"
	"dotprov/internal/types"
)

// insert is the shared write path: encode, append to the heap, maintain
// every index. Writes are charged per row on each touched object, matching
// how the paper benchmarked write costs (Table 1 SW/RW are ms/row).
// `random` selects RandWrite charging (OLTP inserts landing in arbitrary
// key positions); bulk loads and monotonically increasing inserts use
// SeqWrite.
func (db *DB) insert(ch bufferpool.IOCharger, table string, tu types.Tuple, random bool) error {
	t, err := db.Cat.TableByName(table)
	if err != nil {
		return err
	}
	if len(tu) != t.Schema.Len() {
		return fmt.Errorf("engine: insert into %q: %d values for %d columns", table, len(tu), t.Schema.Len())
	}
	heap := db.heaps[t.ID]
	wt := device.SeqWrite
	if random {
		wt = device.RandWrite
	}
	rec := types.EncodeTuple(nil, tu)
	rid, err := heapInsert(heap, db.pool, ch, rec, wt)
	if err != nil {
		return err
	}
	var key []byte
	for _, ix := range db.Cat.TableIndexes(t.ID) {
		pos, err := db.colPositions(t, ix.Columns)
		if err != nil {
			return err
		}
		key = key[:0]
		for _, p := range pos {
			key = types.EncodeKey(key, tu[p])
		}
		db.trees[ix.ID].Insert(db.pool, ch, key, rid)
		ch.ChargeIO(ix.ID, wt, 1)
	}
	db.analyzed = false
	return nil
}

// heapInsert wraps HeapFile.Insert to honour the caller's choice of write
// type. HeapFile charges SeqWrite itself; for random inserts we charge the
// difference explicitly.
func heapInsert(h *pagestore.HeapFile, pool *bufferpool.Pool, ch bufferpool.IOCharger, rec []byte, wt device.IOType) (pagestore.RID, error) {
	if wt == device.SeqWrite {
		return h.Insert(pool, ch, rec)
	}
	rid, err := h.Insert(pool, swapWriteCharger{ch}, rec)
	return rid, err
}

// swapWriteCharger converts the heap's SeqWrite row charge into RandWrite.
type swapWriteCharger struct {
	inner bufferpool.IOCharger
}

func (s swapWriteCharger) ChargeIO(id catalog.ObjectID, t device.IOType, n int64) {
	if t == device.SeqWrite {
		t = device.RandWrite
	}
	s.inner.ChargeIO(id, t, n)
}

// Insert appends a row within a session (sequential write pattern).
func (s *Session) Insert(table string, tu types.Tuple) error {
	s.acct.ChargeCPU(plan.CPUPerRowWrite)
	return s.db.insert(s.acct, table, tu, false)
}

// InsertRandom appends a row whose key lands in an arbitrary position
// (OLTP-style), charged as a random write.
func (s *Session) InsertRandom(table string, tu types.Tuple) error {
	s.acct.ChargeCPU(plan.CPUPerRowWrite)
	return s.db.insert(s.acct, table, tu, true)
}

// LookupEq returns the tuples (and their RIDs) whose index key equals the
// given values, charging the index descent and one random heap read per
// match.
func (s *Session) LookupEq(indexName string, vals ...types.Value) ([]types.Tuple, []pagestore.RID, error) {
	db := s.db
	ix, err := db.Cat.IndexByName(indexName)
	if err != nil {
		return nil, nil, err
	}
	t := db.Cat.Table(ix.TableID)
	tree := db.trees[ix.ID]
	heap := db.heaps[t.ID]
	key := types.EncodeKey(nil, vals...)
	var tuples []types.Tuple
	var rids []pagestore.RID
	var innerErr error
	n := t.Schema.Len()
	prefix := len(vals) < len(ix.Columns)
	hi := key
	if prefix {
		// Prefix lookup: the encoded prefix is a lower bound; extend the
		// upper bound so all completions match.
		hi = append(append([]byte(nil), key...), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)
	}
	tree.Range(db.pool, s.acct, key, hi, true, true, func(_ []byte, rid pagestore.RID) bool {
		s.acct.ChargeCPU(plan.CPUIndexTime)
		rec, err := heap.Fetch(db.pool, s.acct, rid)
		if err != nil {
			innerErr = err
			return false
		}
		tu, _, err := types.DecodeTuple(rec, n)
		if err != nil {
			innerErr = err
			return false
		}
		s.acct.ChargeCPU(plan.CPUTupleTime)
		tuples = append(tuples, tu.Clone())
		rids = append(rids, rid)
		return true
	})
	if innerErr != nil {
		return nil, nil, innerErr
	}
	return tuples, rids, nil
}

// UpdateByRID rewrites a row in place (random write), maintaining any index
// whose key columns changed.
func (s *Session) UpdateByRID(table string, rid pagestore.RID, newTu types.Tuple) error {
	db := s.db
	t, err := db.Cat.TableByName(table)
	if err != nil {
		return err
	}
	if len(newTu) != t.Schema.Len() {
		return fmt.Errorf("engine: update %q: %d values for %d columns", table, len(newTu), t.Schema.Len())
	}
	heap := db.heaps[t.ID]
	oldRec, err := heap.Fetch(db.pool, s.acct, rid)
	if err != nil {
		return err
	}
	oldTu, _, err := types.DecodeTuple(oldRec, t.Schema.Len())
	if err != nil {
		return err
	}
	s.acct.ChargeCPU(plan.CPUPerRowWrite)
	if err := heap.Update(db.pool, s.acct, rid, types.EncodeTuple(nil, newTu)); err != nil {
		return err
	}
	for _, ix := range db.Cat.TableIndexes(t.ID) {
		pos, err := db.colPositions(t, ix.Columns)
		if err != nil {
			return err
		}
		changed := false
		for _, p := range pos {
			if !types.Equal(oldTu[p], newTu[p]) {
				changed = true
				break
			}
		}
		if !changed {
			continue
		}
		var oldKey, newKey []byte
		for _, p := range pos {
			oldKey = types.EncodeKey(oldKey, oldTu[p])
			newKey = types.EncodeKey(newKey, newTu[p])
		}
		tree := db.trees[ix.ID]
		tree.Delete(db.pool, s.acct, oldKey, rid)
		tree.Insert(db.pool, s.acct, newKey, rid)
		s.acct.ChargeIO(ix.ID, device.RandWrite, 1)
	}
	return nil
}

// DeleteByRID removes a row and its index entries (random writes).
func (s *Session) DeleteByRID(table string, rid pagestore.RID) error {
	db := s.db
	t, err := db.Cat.TableByName(table)
	if err != nil {
		return err
	}
	heap := db.heaps[t.ID]
	oldRec, err := heap.Fetch(db.pool, s.acct, rid)
	if err != nil {
		return err
	}
	oldTu, _, err := types.DecodeTuple(oldRec, t.Schema.Len())
	if err != nil {
		return err
	}
	s.acct.ChargeCPU(plan.CPUPerRowWrite)
	if err := heap.Delete(db.pool, s.acct, rid); err != nil {
		return err
	}
	var key []byte
	for _, ix := range db.Cat.TableIndexes(t.ID) {
		pos, err := db.colPositions(t, ix.Columns)
		if err != nil {
			return err
		}
		key = key[:0]
		for _, p := range pos {
			key = types.EncodeKey(key, oldTu[p])
		}
		db.trees[ix.ID].Delete(db.pool, s.acct, key, rid)
		s.acct.ChargeIO(ix.ID, device.RandWrite, 1)
	}
	return nil
}
