package device

import (
	"fmt"
	"sort"
)

// Box is a server's I/O subsystem: the set of storage classes available to
// the layout optimizer. The paper evaluates two boxes (§4.1):
//
//	Box 1: HDD RAID 0, L-SSD, H-SSD
//	Box 2: HDD, L-SSD RAID 0, H-SSD
type Box struct {
	Name    string
	Devices []*Device
}

// NewBox builds a box from storage classes, each with its default capacity.
func NewBox(name string, classes ...Class) *Box {
	b := &Box{Name: name}
	for _, c := range classes {
		b.Devices = append(b.Devices, New(c))
	}
	return b
}

// Box1 returns the paper's Box 1 configuration.
func Box1() *Box { return NewBox("Box 1", HDDRAID0, LSSD, HSSD) }

// Box2 returns the paper's Box 2 configuration.
func Box2() *Box { return NewBox("Box 2", HDD, LSSDRAID0, HSSD) }

// NewBoxOf builds a box from pre-constructed devices, for configurations
// that mix Table 1 classes with NewCustom hardware.
func NewBoxOf(name string, devices ...*Device) *Box {
	return &Box{Name: name, Devices: devices}
}

// BoxHTAP returns the replication demo box: L-SSD and H-SSD from Table 1
// plus a wide (six-disk) HDD RAID 0 scan stripe in the HDD slot, calibrated
// by extrapolating Table 1's two-disk stripe to ideal sequential striping.
// Its streaming reads (0.012 ms/page) outrun both SSDs while its random
// reads stay seek-bound — the read-latency order across the box is NOT
// total, so per-pattern best-replica routing has something to win: a scan
// copy on the stripe plus a point-lookup copy on flash beats any single
// placement once an SLA rules out the slow singleton layouts. On the
// paper's own boxes the H-SSD is fastest at every read pattern and
// replication never strictly wins; see NewCustom.
func BoxHTAP() *Box {
	stripe := NewCustom(HDD, Spec{
		Brand: "WD", Model: "Caviar Black x6 RAID 0",
		CapacityGB: 500, Interface: "SATA II", RPM: 7200, CacheMB: 32,
		PurchaseUSD: 34, PowerWatts: 8.3, Drives: 6, RAIDCtrl: true,
	}, [NumIOTypes]Calibration{
		SeqRead:   {MS1: 0.012, MS300: 0.029},
		RandRead:  {MS1: 12.5, MS300: 3.0},
		SeqWrite:  {MS1: 0.010, MS300: 0.030},
		RandWrite: {MS1: 10.5, MS300: 3.2},
	})
	return NewBoxOf("HTAP Box", stripe, New(LSSD), New(HSSD))
}

// Device returns the device of the given class, or nil if the box does not
// include it.
func (b *Box) Device(c Class) *Device {
	for _, d := range b.Devices {
		if d.Class == c {
			return d
		}
	}
	return nil
}

// Classes lists the storage classes in the box.
func (b *Box) Classes() []Class {
	out := make([]Class, len(b.Devices))
	for i, d := range b.Devices {
		out[i] = d.Class
	}
	return out
}

// MostExpensive returns the device with the highest cent/GB/hour price. DOT
// uses it as the starting layout L0 (paper §3.1: "start from a layout that
// places all the objects on the most expensive storage class").
func (b *Box) MostExpensive() *Device {
	if len(b.Devices) == 0 {
		return nil
	}
	best := b.Devices[0]
	for _, d := range b.Devices[1:] {
		if d.PriceCents > best.PriceCents {
			best = d
		}
	}
	return best
}

// Cheapest returns the device with the lowest cent/GB/hour price.
func (b *Box) Cheapest() *Device {
	if len(b.Devices) == 0 {
		return nil
	}
	best := b.Devices[0]
	for _, d := range b.Devices[1:] {
		if d.PriceCents < best.PriceCents {
			best = d
		}
	}
	return best
}

// SetCapacity overrides the usable capacity of one class, for the paper's
// capacity-constrained experiments (§4.4.3, §4.5.3). It returns an error if
// the class is not in the box.
func (b *Box) SetCapacity(c Class, bytes int64) error {
	d := b.Device(c)
	if d == nil {
		return fmt.Errorf("device: box %q has no class %v", b.Name, c)
	}
	d.CapacityBytes = bytes
	return nil
}

// TotalCapacityBytes returns the usable capacity summed over every device
// in the box.
func (b *Box) TotalCapacityBytes() int64 {
	var total int64
	for _, d := range b.Devices {
		total += d.CapacityBytes
	}
	return total
}

// SortedByPrice returns the devices ordered from cheapest to most expensive.
func (b *Box) SortedByPrice() []*Device {
	out := append([]*Device(nil), b.Devices...)
	sort.Slice(out, func(i, j int) bool { return out[i].PriceCents < out[j].PriceCents })
	return out
}

// Clone returns a deep copy of the box so experiments can adjust capacities
// without affecting each other.
func (b *Box) Clone() *Box {
	nb := &Box{Name: b.Name}
	for _, d := range b.Devices {
		cp := *d
		nb.Devices = append(nb.Devices, &cp)
	}
	return nb
}
