package catalog

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dotprov/internal/device"
)

// SetLayout is a replicated data layout L: O -> 2^D mapping every object
// (or placement unit) to the non-empty set of storage classes holding a
// copy. Singleton sets are exactly the single-class layouts of Layout; the
// replica search's compact form stores each set's bitmask in the byte slot
// a CompactLayout stores a class in (see CompactLayout.SetMask), so the
// whole compiled search pipeline — memo, arenas, delta chains — runs
// unchanged over replicated candidates.
type SetLayout map[ObjectID]device.ClassSet

// NewUniformSetLayout places every catalog object on one class set.
func NewUniformSetLayout(c *Catalog, set device.ClassSet) SetLayout {
	l := make(SetLayout, len(c.objects))
	for id := range c.objects {
		l[id] = set
	}
	return l
}

// SingletonSetLayout lifts a single-class layout to the replicated form,
// each object placed on the singleton set of its class.
func SingletonSetLayout(l Layout) SetLayout {
	out := make(SetLayout, len(l))
	for id, cls := range l {
		out[id] = device.Singleton(cls)
	}
	return out
}

// SingleLayout collapses the replicated layout back to the single-class
// form. ok=false when some object holds more than one copy — the layout is
// genuinely replicated and has no lossless single-class form.
func (l SetLayout) SingleLayout() (Layout, bool) {
	out := make(Layout, len(l))
	for id, set := range l {
		c, ok := set.Single()
		if !ok {
			return nil, false
		}
		out[id] = c
	}
	return out, true
}

// Clone returns a copy of the layout.
func (l SetLayout) Clone() SetLayout {
	out := make(SetLayout, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// Equal reports whether two replicated layouts place every object on the
// same class set.
func (l SetLayout) Equal(o SetLayout) bool {
	if len(l) != len(o) {
		return false
	}
	for k, v := range l {
		if ov, ok := o[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// Key returns a canonical byte-string encoding — (ObjectID, mask) pairs
// sorted by ID. Two replicated layouts have equal keys iff Equal reports
// true. Set keys and single-class keys live in different key spaces (a mask
// byte and a class byte can collide numerically), so callers must never mix
// them in one memo; the replica search uses its own engine.
func (l SetLayout) Key() string {
	ids := make([]ObjectID, 0, len(l))
	for id := range l {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	b := make([]byte, 0, 5*len(ids))
	for _, id := range ids {
		b = append(b, byte(id>>24), byte(id>>16), byte(id>>8), byte(id), byte(l[id]))
	}
	return string(b)
}

// SpaceByClass returns S_j under replication: every class holding a copy of
// an object is charged the object's full size.
func (l SetLayout) SpaceByClass(c *Catalog) map[device.Class]int64 {
	out := make(map[device.Class]int64)
	for id, set := range l {
		o := c.Object(id)
		if o == nil {
			continue
		}
		for cls := device.Class(0); int(cls) < device.NumClasses; cls++ {
			if set.Has(cls) {
				out[cls] += o.SizeBytes
			}
		}
	}
	return out
}

// CostCentsPerHour computes the replicated layout cost: sum_j p_j * S_j
// where S_j charges every replica its full size. Classes are summed in
// ascending order with the same per-class expression as the single-class
// model, so a layout of singleton sets prices bit-identically to its
// single-class form.
func (l SetLayout) CostCentsPerHour(c *Catalog, box *device.Box) (float64, error) {
	space := l.SpaceByClass(c)
	var cost float64
	for _, cls := range SortedClasses(space) {
		d := box.Device(cls)
		if d == nil {
			return 0, fmt.Errorf("catalog: layout uses class %v not present in box %q", cls, box.Name)
		}
		cost += d.PriceCents * float64(space[cls]) / 1e9
	}
	return cost, nil
}

// TOCCents computes the replicated workload cost C(L) * t.
func (l SetLayout) TOCCents(c *Catalog, box *device.Box, elapsed time.Duration) (float64, error) {
	perHour, err := l.CostCentsPerHour(c, box)
	if err != nil {
		return 0, err
	}
	return perHour * elapsed.Hours(), nil
}

// CheckCapacity validates the capacity constraints with every replica
// charged its full size.
func (l SetLayout) CheckCapacity(c *Catalog, box *device.Box) error {
	space := l.SpaceByClass(c)
	for _, cls := range SortedClasses(space) {
		d := box.Device(cls)
		if d == nil {
			return fmt.Errorf("catalog: layout uses class %v not present in box %q", cls, box.Name)
		}
		if space[cls] >= d.CapacityBytes {
			return fmt.Errorf("catalog: class %v over capacity: %d bytes placed, capacity %d",
				cls, space[cls], d.CapacityBytes)
		}
	}
	return nil
}

// String renders the replicated layout one object per line, sorted by
// object name, each with its copy set.
func (l SetLayout) String(c *Catalog) string {
	type row struct{ name, set string }
	rows := make([]row, 0, len(l))
	for id, set := range l {
		if o := c.Object(id); o != nil {
			rows = append(rows, row{o.Name, set.String()})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s: %s\n", r.name, r.set)
	}
	return b.String()
}

// ---- compact (mask-byte) form --------------------------------------------

// SetRaw stores a raw placement byte without class validation. The replica
// search stores device.ClassSet masks in the same byte slots a
// single-class layout stores classes in; everything downstream of the byte
// (memo keys, clones, arenas) is value-agnostic.
func (cl CompactLayout) SetRaw(id ObjectID, b byte) {
	cl.b[DenseIndex(id)] = b
}

// MaskAt returns the class-set mask at a dense slot. ok=false when the slot
// is out of range or unset. The mask itself may still be invalid (empty or
// containing undefined classes) — callers that care check ClassSet.Valid.
func (cl CompactLayout) MaskAt(i int) (device.ClassSet, bool) {
	if i < 0 || i >= len(cl.b) || cl.b[i] == classUnset {
		return 0, false
	}
	return device.ClassSet(cl.b[i]), true
}

// CompactUniformSet places every object of the catalog on one class set,
// in the compact mask-byte form.
func CompactUniformSet(c *Catalog, set device.ClassSet) CompactLayout {
	if !set.Valid() {
		panic(fmt.Sprintf("catalog: CompactUniformSet with invalid set %v", set))
	}
	b := make([]byte, c.NumObjects())
	for i := range b {
		b[i] = byte(set)
	}
	return CompactLayout{b: b}
}

// CompactFromSetLayout converts a replicated map layout to the compact
// mask-byte form. ok=false when an object ID is outside the catalog's dense
// range or a set is invalid — callers must then stay on the map path.
func CompactFromSetLayout(c *Catalog, l SetLayout) (CompactLayout, bool) {
	cl := NewCompactLayout(c.NumObjects())
	for id, set := range l {
		i := DenseIndex(id)
		if i < 0 || i >= len(cl.b) || !set.Valid() {
			return CompactLayout{}, false
		}
		cl.b[i] = byte(set)
	}
	return cl, true
}

// ToSetLayout materializes the replicated map form of a compact mask-byte
// layout. Unset slots stay absent.
func (cl CompactLayout) ToSetLayout() SetLayout {
	out := make(SetLayout, len(cl.b))
	for i, v := range cl.b {
		if v != classUnset {
			out[ObjectID(i+1)] = device.ClassSet(v)
		}
	}
	return out
}

// setSpaceDense accumulates per-class byte totals and usage flags over a
// dense size table, interpreting placement bytes as class-set masks: every
// member class of a unit's set is charged the unit's full size. For a
// layout of singleton masks the accumulation visits exactly the (slot,
// class) pairs the single-class spaceDense visits, in the same order, so
// the totals — and every float derived from them — are bit-identical.
func (cl CompactLayout) setSpaceDense(sizes []int64) (bytes [device.NumClasses]int64, used [device.NumClasses]bool) {
	for i, v := range cl.b {
		if v == classUnset {
			continue
		}
		var sz int64
		if i < len(sizes) {
			sz = sizes[i]
		}
		m := device.ClassSet(v)
		for c := 0; c < device.NumClasses; c++ {
			if m.Has(device.Class(c)) {
				bytes[c] += sz
				used[c] = true
			}
		}
	}
	return bytes, used
}

// SetCostCentsPerHourDense computes the replicated layout cost over a dense
// size table, interpreting placement bytes as class-set masks. Classes are
// summed in ascending order with the single-class path's per-class
// expression, so singleton-mask layouts price bit-identically to
// CostCentsPerHourDense on their single-class form.
func (cl CompactLayout) SetCostCentsPerHourDense(sizes []int64, box *device.Box) (float64, error) {
	bytes, used := cl.setSpaceDense(sizes)
	var cost float64
	for c := 0; c < device.NumClasses; c++ {
		if !used[c] {
			continue
		}
		d := box.Device(device.Class(c))
		if d == nil {
			return 0, fmt.Errorf("catalog: layout uses class %v not present in box %q", device.Class(c), box.Name)
		}
		cost += d.PriceCents * float64(bytes[c]) / 1e9
	}
	return cost, nil
}

// SetFitsCapacityDense reports whether the replicated layout fits the box
// over a dense size table, every replica charged its full size.
func (cl CompactLayout) SetFitsCapacityDense(sizes []int64, box *device.Box) bool {
	bytes, used := cl.setSpaceDense(sizes)
	for c := 0; c < device.NumClasses; c++ {
		if !used[c] {
			continue
		}
		d := box.Device(device.Class(c))
		if d == nil || bytes[c] >= d.CapacityBytes {
			return false
		}
	}
	return true
}
