package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"dotprov/internal/online"
)

// defineTenant defines one stream over the shared OLTP spec and returns the
// observe response.
func defineTenant(t *testing.T, ts *httptest.Server, name string, spec WorkloadSpec) ObserveResponse {
	t.Helper()
	var out ObserveResponse
	if status := post(t, ts, "/v1/observe", ObserveRequest{Stream: name, Workload: spec, Box: "box1", SLA: 0.25}, &out); status != http.StatusOK {
		t.Fatalf("define %s: status=%d", name, status)
	}
	if !out.Initialized || !out.Feasible {
		t.Fatalf("define %s: %+v", name, out)
	}
	return out
}

// TestFleetEndpoint walks /v1/fleet through its contract: the empty fleet,
// per-tenant rollups with memo attribution, the single-tenant query, the
// unknown-tenant 404 (unified envelope), bad pagination 400s, and the
// deprecated /fleet alias headers.
func TestFleetEndpoint(t *testing.T) {
	s := New(Config{Workers: 2, MaxStreams: 8})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Empty fleet.
	var fr FleetResponse
	getJSON(t, ts, "/v1/fleet", &fr)
	if fr.Tenants != 0 || len(fr.Rollups) != 0 || fr.Shards != s.cfg.Shards {
		t.Fatalf("empty fleet: %+v", fr)
	}

	// Two equal-workload tenants: the second's initial advise must be a
	// memo hit, and both land identical layouts.
	o1 := defineTenant(t, ts, "alpha", oltpObserveSpec(1, 0))
	o2 := defineTenant(t, ts, "beta", oltpObserveSpec(1, 0))
	if fmt.Sprint(o1.Layout) != fmt.Sprint(o2.Layout) {
		t.Fatalf("equal-workload tenants got different layouts:\n%v\n%v", o1.Layout, o2.Layout)
	}
	// A third tenant with a different workload must miss the memo.
	defineTenant(t, ts, "gamma", oltpObserveSpec(2, 0.5))

	getJSON(t, ts, "/v1/fleet", &fr)
	if fr.Tenants != 3 || fr.Active != 3 || len(fr.Rollups) != 3 {
		t.Fatalf("fleet after 3 defines: %+v", fr)
	}
	if fr.MemoMisses != 2 || fr.MemoHits != 1 {
		t.Fatalf("memo counters: hits=%d misses=%d, want 1 and 2", fr.MemoHits, fr.MemoMisses)
	}
	// Sorted by name; rollup content.
	for i, want := range []string{"alpha", "beta", "gamma"} {
		ru := fr.Rollups[i]
		if ru.Stream != want {
			t.Fatalf("rollup %d is %q, want %q (sorted)", i, ru.Stream, want)
		}
		if ru.State != "active" || !ru.SLAAttained || ru.LastDecision != "advise" {
			t.Fatalf("rollup %s: %+v", want, ru)
		}
		if ru.SLA != 0.25 || ru.Windows < 1 || ru.StorageCentsPerHour <= 0 || ru.TOCCents <= 0 {
			t.Fatalf("rollup %s detail: %+v", want, ru)
		}
		if ru.Shard < 0 || ru.Shard >= s.cfg.Shards {
			t.Fatalf("rollup %s shard %d out of ring [0,%d)", want, ru.Shard, s.cfg.Shards)
		}
	}
	if fr.Rollups[0].MemoHit || !fr.Rollups[1].MemoHit || fr.Rollups[2].MemoHit {
		t.Fatalf("memo attribution: alpha=%v beta=%v gamma=%v, want false/true/false",
			fr.Rollups[0].MemoHit, fr.Rollups[1].MemoHit, fr.Rollups[2].MemoHit)
	}

	// Single-tenant query.
	getJSON(t, ts, "/v1/fleet?stream=beta", &fr)
	if fr.Tenants != 1 || len(fr.Rollups) != 1 || fr.Rollups[0].Stream != "beta" {
		t.Fatalf("single-tenant query: %+v", fr)
	}

	// Unknown tenant: 404 with the unified envelope.
	resp, err := ts.Client().Get(ts.URL + "/v1/fleet?stream=nope")
	if err != nil {
		t.Fatal(err)
	}
	var e apiError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || e.Code != "not_found" || e.Error == "" {
		t.Fatalf("unknown tenant: status=%d envelope=%+v, want 404 not_found", resp.StatusCode, e)
	}

	// Bad pagination: 400 with the envelope.
	for _, q := range []string{"?limit=0", "?limit=9999", "?offset=-1", "?limit=x"} {
		resp, err := ts.Client().Get(ts.URL + "/v1/fleet" + q)
		if err != nil {
			t.Fatal(err)
		}
		var e apiError
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || e.Code != "bad_request" {
			t.Fatalf("%s: status=%d code=%q, want 400 bad_request", q, resp.StatusCode, e.Code)
		}
	}

	// The unversioned alias answers identically under deprecation headers.
	resp, err = ts.Client().Get(ts.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	var aliased FleetResponse
	if err := json.NewDecoder(resp.Body).Decode(&aliased); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "true" {
		t.Fatal("/fleet alias missing Deprecation header")
	}
	if link := resp.Header.Get("Link"); link != `</v1/fleet>; rel="successor-version"` {
		t.Fatalf("/fleet alias Link = %q", link)
	}
	if aliased.Tenants != 3 {
		t.Fatalf("alias answered differently: %+v", aliased)
	}
}

// TestFleetPagination defines 1000 equal-workload tenants (the memo makes
// this cheap: one search, 999 coalesced hits) and pages through the rollup.
func TestFleetPagination(t *testing.T) {
	const tenants = 1000
	s := New(Config{Workers: 2, MaxStreams: tenants})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := oltpObserveSpec(1, 0)
	for i := 0; i < tenants; i++ {
		defineTenant(t, ts, fmt.Sprintf("tenant-%04d", i), spec)
	}
	var h HealthResponse
	getJSON(t, ts, "/v1/healthz", &h)
	if h.MemoMisses != 1 || h.MemoHits != tenants-1 {
		t.Fatalf("memo over %d equal tenants: hits=%d misses=%d, want %d and 1", tenants, h.MemoHits, h.MemoMisses, tenants-1)
	}

	var fr FleetResponse
	// Default page.
	getJSON(t, ts, "/v1/fleet", &fr)
	if fr.Tenants != tenants || len(fr.Rollups) != fleetLimitDefault {
		t.Fatalf("default page: tenants=%d rollups=%d", fr.Tenants, len(fr.Rollups))
	}
	// Walk the whole fleet in pages and reassemble the name list.
	seen := make(map[string]bool, tenants)
	prev := ""
	for off := 0; off < tenants; off += 250 {
		getJSON(t, ts, fmt.Sprintf("/v1/fleet?offset=%d&limit=250", off), &fr)
		if fr.Offset != off || fr.Limit != 250 || len(fr.Rollups) != 250 {
			t.Fatalf("page offset=%d: %+v (%d rollups)", off, fr, len(fr.Rollups))
		}
		for _, ru := range fr.Rollups {
			if ru.Stream <= prev {
				t.Fatalf("page offset=%d not sorted: %q after %q", off, ru.Stream, prev)
			}
			prev = ru.Stream
			seen[ru.Stream] = true
		}
	}
	if len(seen) != tenants {
		t.Fatalf("paging saw %d distinct tenants, want %d", len(seen), tenants)
	}
	// Tail page past the end.
	getJSON(t, ts, fmt.Sprintf("/v1/fleet?offset=%d&limit=250", tenants-50), &fr)
	if len(fr.Rollups) != 50 {
		t.Fatalf("tail page: %d rollups, want 50", len(fr.Rollups))
	}
	getJSON(t, ts, fmt.Sprintf("/v1/fleet?offset=%d&limit=250", tenants+10), &fr)
	if len(fr.Rollups) != 0 {
		t.Fatalf("past-the-end page: %d rollups, want 0", len(fr.Rollups))
	}
}

// waitEvicted polls until the server has evicted at least n streams.
func waitEvicted(t *testing.T, s *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.evicted.Load() >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("evicted %d streams, want %d", s.evicted.Load(), n)
}

// TestFleetEvictionRematerialize: an idle tenant is evicted (slot freed,
// state parked), appears as "evicted" in /v1/fleet, and transparently
// rematerializes on its next touch with windows, reference profile and
// deployed layout intact — including across a snapshot restart.
func TestFleetEvictionRematerialize(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Workers: 2, MaxStreams: 4, StreamTTL: 30 * time.Millisecond, EvictEvery: 5 * time.Millisecond,
		SnapshotDir: dir, SnapshotEvery: time.Hour})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	defineTenant(t, ts, "idle", oltpObserveSpec(1, 0))
	if status := post(t, ts, "/v1/observe", ObserveRequest{Stream: "idle", Workload: oltpObserveSpec(1, 0)}, nil); status != http.StatusOK {
		t.Fatalf("second window status=%d", status)
	}
	var before ReadviseResponse
	if status := post(t, ts, "/v1/readvise", ReadviseRequest{Stream: "idle", Force: true}, &before); status != http.StatusOK {
		t.Fatalf("pre-eviction readvise status=%d", status)
	}

	waitEvicted(t, s, 1)
	var h HealthResponse
	getJSON(t, ts, "/v1/healthz", &h)
	if h.Streams != 0 || h.Evicted < 1 {
		t.Fatalf("post-eviction health: streams=%d evicted=%d", h.Streams, h.Evicted)
	}
	var fr FleetResponse
	getJSON(t, ts, "/v1/fleet?stream=idle", &fr)
	if fr.Rollups[0].State != "evicted" {
		t.Fatalf("evicted tenant rollup: %+v", fr.Rollups[0])
	}

	// Touching the tenant rematerializes it: same windows, same layout (the
	// repeated identical profile keeps the forced re-advise's answer fixed,
	// so a lost reference or layout would show up here).
	var after ReadviseResponse
	if status := post(t, ts, "/v1/readvise", ReadviseRequest{Stream: "idle", Force: true}, &after); status != http.StatusOK {
		t.Fatalf("post-eviction readvise status=%d", status)
	}
	if fmt.Sprint(after.Layout) != fmt.Sprint(before.Layout) || after.ReAdvised != before.ReAdvised {
		t.Fatalf("rematerialized decision differs:\nbefore %+v\nafter  %+v", before, after)
	}
	getJSON(t, ts, "/v1/healthz", &h)
	// (No Streams assertion here: with the short TTL the janitor may have
	// already evicted the tenant a second time.)
	if h.Rematerialized < 1 {
		t.Fatalf("post-rematerialize health: %+v", h)
	}

	// A snapshot taken now must carry the tenant even if it is evicted
	// again; a restarted server restores it (lazily) and answers the same
	// forced re-advise.
	waitEvicted(t, s, 2)
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := New(Config{Workers: 2, MaxStreams: 4, StreamTTL: time.Hour, SnapshotDir: dir, SnapshotEvery: time.Hour})
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	getJSON(t, ts2, "/v1/healthz", &h)
	if h.Restored != 1 {
		t.Fatalf("restart restored %d streams, want 1", h.Restored)
	}
	var revived ReadviseResponse
	if status := post(t, ts2, "/v1/readvise", ReadviseRequest{Stream: "idle", Force: true}, &revived); status != http.StatusOK {
		t.Fatalf("post-restart readvise status=%d", status)
	}
	if fmt.Sprint(revived.Layout) != fmt.Sprint(before.Layout) {
		t.Fatalf("restarted decision differs:\nbefore %+v\nafter  %+v", before, revived)
	}
}

// canonicalReadvise strips the only wall-clock field from a readvise
// response so decisions can be compared across servers.
func canonicalReadvise(t *testing.T, rv ReadviseResponse) string {
	t.Helper()
	rv.PlanMillis = 0
	b, err := json.Marshal(rv)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestFleetShardParity runs the same tenant fleet — defines, binary frame
// windows, forced re-advises — against a 1-shard and a 4-shard server and
// requires bit-identical decisions: shard count is an execution detail,
// never a semantic one.
func TestFleetShardParity(t *testing.T) {
	const tenants = 6
	decide := func(shards int) []string {
		s := New(Config{Workers: 2, Shards: shards, MaxStreams: tenants})
		defer s.Close()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		for i := 0; i < tenants; i++ {
			// Workloads vary per tenant so the decisions are not trivially
			// equal, and the drifted mix forces real moves.
			defineTenant(t, ts, fmt.Sprintf("t-%d", i), oltpObserveSpec(1+float64(i%3), 0))
		}
		var folded int64
		for i := 0; i < tenants; i++ {
			spec := oltpObserveSpec(1+float64(i%3), 0.95)
			batch := online.EncodeFrames([]online.Frame{frameFromSpec(spec), frameFromSpec(spec)})
			if status, _ := postFrames(t, ts, fmt.Sprintf("t-%d", i), batch, nil); status != http.StatusAccepted {
				t.Fatalf("frames t-%d: status=%d", i, status)
			}
			folded += 2
		}
		waitIngested(t, s, folded)
		out := make([]string, tenants)
		for i := 0; i < tenants; i++ {
			var rv ReadviseResponse
			if status := post(t, ts, "/v1/readvise", ReadviseRequest{Stream: fmt.Sprintf("t-%d", i), Force: true}, &rv); status != http.StatusOK {
				t.Fatalf("readvise t-%d: status=%d", i, status)
			}
			out[i] = canonicalReadvise(t, rv)
		}
		return out
	}
	one, four := decide(1), decide(4)
	for i := range one {
		if one[i] != four[i] {
			t.Fatalf("tenant %d decision differs between 1 and 4 shards:\n1: %s\n4: %s", i, one[i], four[i])
		}
	}
}

// BenchmarkFleetFold measures the ingest fold plane's frame throughput at
// one shard versus one shard per CPU: frames are enqueued directly onto
// the shard queues (bypassing HTTP) and the benchmark clock stops when the
// fold workers have drained them all. scripts/benchguard.sh gates the
// shards-N/shards-1 ratio on multi-core machines.
func BenchmarkFleetFold(b *testing.B) {
	spec := oltpObserveSpec(1, 0)
	frame := frameFromSpec(spec)
	// Give every object a wide extent histogram so the per-frame fold does
	// real aggregation work (the regime shard parallelism exists for).
	frame.ExtentPages = 1 << 8
	for i := range frame.Objects {
		frame.Objects[i].Extents = make([]float64, 64)
		for j := range frame.Objects[i].Extents {
			frame.Objects[i].Extents[j] = float64(j)
		}
	}
	for _, shards := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			const tenants = 16
			s := New(Config{Workers: 1, Shards: shards, MaxStreams: tenants, IngestQueue: 1 << 15})
			defer s.Close()
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			sts := make([]*stream, tenants)
			for i := 0; i < tenants; i++ {
				name := fmt.Sprintf("bench-%02d", i)
				body, err := json.Marshal(ObserveRequest{Stream: name, Workload: spec, Box: "box1", SLA: 0.25})
				if err != nil {
					b.Fatal(err)
				}
				resp, err := ts.Client().Post(ts.URL+"/v1/observe", "application/json", bytes.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("define %s: status=%d", name, resp.StatusCode)
				}
				st, err := s.loadStream(name)
				if err != nil || st == nil {
					b.Fatalf("loadStream %s: %v", name, err)
				}
				sts[i] = st
			}
			s.ingestOnce.Do(func() {
				for i := range s.shardQ {
					go s.ingestLoop(i)
				}
			})
			start := s.ingested.Load()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st := sts[i%tenants]
				s.queued.Add(1)
				s.shardQ[st.shard] <- ingestItem{st: st, frame: frame}
			}
			for s.ingested.Load()-start < int64(b.N) {
				time.Sleep(50 * time.Microsecond)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
		})
	}
}
