package catalog

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dotprov/internal/device"
	"dotprov/internal/types"
)

func replicaFixture(t *testing.T) *Catalog {
	t.Helper()
	c := New()
	sch := types.NewSchema(types.Column{Name: "id", Kind: types.KindInt})
	for i, sz := range []int64{20e9, 2e9, 1e9, 1e8} {
		tab, err := c.CreateTable(string(rune('a'+i)), sch, nil)
		if err != nil {
			t.Fatal(err)
		}
		c.SetSize(tab.ID, sz)
	}
	return c
}

// TestSetLayoutSingletonParity: a layout of singleton sets must price,
// fit, and key exactly like its single-class form on both the map and the
// dense compact paths — the foundation of the replicated search's
// bit-parity guarantee.
func TestSetLayoutSingletonParity(t *testing.T) {
	c := replicaFixture(t)
	box := device.Box1()
	sizes := c.DenseSizeBytes()
	rng := rand.New(rand.NewSource(7))
	classes := box.Classes()
	for trial := 0; trial < 100; trial++ {
		single := make(Layout)
		for _, o := range c.Objects() {
			single[o.ID] = classes[rng.Intn(len(classes))]
		}
		set := SingletonSetLayout(single)

		wantCost, err := single.CostCentsPerHour(c, box)
		if err != nil {
			t.Fatal(err)
		}
		gotCost, err := set.CostCentsPerHour(c, box)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(gotCost) != math.Float64bits(wantCost) {
			t.Fatalf("trial %d: set cost %v != single cost %v", trial, gotCost, wantCost)
		}
		if (single.CheckCapacity(c, box) == nil) != (set.CheckCapacity(c, box) == nil) {
			t.Fatalf("trial %d: capacity verdicts differ", trial)
		}

		cl, ok := CompactFromSetLayout(c, set)
		if !ok {
			t.Fatalf("trial %d: compact conversion failed", trial)
		}
		scl, _ := CompactFromLayout(c, single)
		wantDense, err := scl.CostCentsPerHourDense(sizes, box)
		if err != nil {
			t.Fatal(err)
		}
		gotDense, err := cl.SetCostCentsPerHourDense(sizes, box)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(gotDense) != math.Float64bits(wantDense) {
			t.Fatalf("trial %d: dense set cost %v != dense single cost %v", trial, gotDense, wantDense)
		}
		if cl.SetFitsCapacityDense(sizes, box) != scl.FitsCapacityDense(sizes, box) {
			t.Fatalf("trial %d: dense capacity verdicts differ", trial)
		}
	}
}

// TestSetLayoutReplicaPricing: every member of a set is charged the
// object's full size, so a two-copy layout costs the sum of the two
// single-class uniforms.
func TestSetLayoutReplicaPricing(t *testing.T) {
	c := replicaFixture(t)
	box := device.Box1()
	pair := device.NewClassSet(device.LSSD, device.HSSD)
	l := NewUniformSetLayout(c, pair)

	got, err := l.CostCentsPerHour(c, box)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, cls := range []device.Class{device.LSSD, device.HSSD} {
		v, err := NewUniformLayout(c, cls).CostCentsPerHour(c, box)
		if err != nil {
			t.Fatal(err)
		}
		want += v
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("pair cost %v, want sum of singles %v", got, want)
	}

	space := l.SpaceByClass(c)
	if space[device.LSSD] != c.TotalSize() || space[device.HSSD] != c.TotalSize() {
		t.Fatalf("each member must hold the full catalog: %v", space)
	}

	// Dense path agrees with the map path bit for bit.
	cl := CompactUniformSet(c, pair)
	dense, err := cl.SetCostCentsPerHourDense(c.DenseSizeBytes(), box)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(dense) != math.Float64bits(got) {
		t.Fatalf("dense pair cost %v != map pair cost %v", dense, got)
	}
}

// TestSetLayoutRoundTripsAndKeys: map<->compact round trips, key
// discrimination, and the SingleLayout collapse.
func TestSetLayoutRoundTripsAndKeys(t *testing.T) {
	c := replicaFixture(t)
	pair := device.NewClassSet(device.HDD, device.HSSD)
	l := NewUniformSetLayout(c, pair)
	l[1] = device.Singleton(device.LSSD)

	cl, ok := CompactFromSetLayout(c, l)
	if !ok {
		t.Fatal("compact conversion failed")
	}
	if back := cl.ToSetLayout(); !back.Equal(l) {
		t.Fatalf("round trip lost placements:\n%v\nvs\n%v", back, l)
	}
	if m, ok := cl.MaskAt(DenseIndex(1)); !ok || m != device.Singleton(device.LSSD) {
		t.Fatalf("MaskAt(0) = %v, %v", m, ok)
	}
	if _, ok := cl.MaskAt(-1); ok {
		t.Fatal("MaskAt out of range must fail")
	}

	if _, ok := l.SingleLayout(); ok {
		t.Fatal("SingleLayout must fail on a genuinely replicated layout")
	}
	singles := SingletonSetLayout(NewUniformLayout(c, device.HSSD))
	sl, ok := singles.SingleLayout()
	if !ok || !sl.Equal(NewUniformLayout(c, device.HSSD)) {
		t.Fatal("SingleLayout lost the singleton collapse")
	}

	if l.Key() == l.Clone().Key() != l.Equal(l.Clone()) {
		t.Fatal("Key/Equal disagree on a clone")
	}
	other := l.Clone()
	other[2] = other[2].Add(device.LSSD)
	if l.Key() == other.Key() || l.Equal(other) {
		t.Fatal("distinct layouts share a key")
	}

	// SetRaw stores mask bytes Set would reject.
	raw := NewCompactLayout(c.NumObjects())
	raw.SetRaw(1, byte(pair))
	if m, ok := raw.MaskAt(0); !ok || m != pair {
		t.Fatalf("SetRaw/MaskAt: %v, %v", m, ok)
	}
}

// TestSetLayoutErrorPaths: absent classes and capacity overflows are
// reported with the single-class wording.
func TestSetLayoutErrorPaths(t *testing.T) {
	c := replicaFixture(t)
	box := device.Box1() // no plain HDD
	l := NewUniformSetLayout(c, device.NewClassSet(device.HDD, device.HSSD))
	if _, err := l.CostCentsPerHour(c, box); err == nil || !strings.Contains(err.Error(), "not present in box") {
		t.Fatalf("want absent-class error, got %v", err)
	}
	cl := CompactUniformSet(c, device.NewClassSet(device.HDD, device.HSSD))
	if _, err := cl.SetCostCentsPerHourDense(c.DenseSizeBytes(), box); err == nil || !strings.Contains(err.Error(), "not present in box") {
		t.Fatalf("dense: want absent-class error, got %v", err)
	}
	if cl.SetFitsCapacityDense(c.DenseSizeBytes(), box) {
		t.Fatal("layout on an absent class cannot fit")
	}

	huge := New()
	sch := types.NewSchema(types.Column{Name: "id", Kind: types.KindInt})
	tab, err := huge.CreateTable("big", sch, nil)
	if err != nil {
		t.Fatal(err)
	}
	huge.SetSize(tab.ID, box.Device(device.HSSD).CapacityBytes)
	over := NewUniformSetLayout(huge, device.Singleton(device.HSSD))
	if err := over.CheckCapacity(huge, box); err == nil || !strings.Contains(err.Error(), "over capacity") {
		t.Fatalf("want over-capacity error, got %v", err)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("CompactUniformSet must panic on the empty set")
		}
	}()
	CompactUniformSet(c, 0)
}
