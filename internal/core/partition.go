package core

import (
	"fmt"

	"dotprov/internal/catalog"
	"dotprov/internal/workload"
)

// Partitioned derives the unit-granular sibling of an Input: the catalog
// becomes the partitioning's unit catalog, the estimator is re-derived
// over it (profile-driven estimators apportion their observations by
// extent heat; plan-aware estimators error), and the profile set is the
// apportioned union profile for move scoring. Every search entry point —
// Optimize, OptimizeBest, Exhaustive, the relaxing loops,
// OptimizeIncremental — then runs unchanged at unit granularity, compiled
// fast path included.
//
// Custom cost models and pruning bounds (LayoutCost, LayoutCostCompact,
// LowerBound, CompactBound) are closures over the object catalog and do
// not carry over; they are cleared, and callers that need them rebuild
// over Partitioned's unit catalog (provision's partitioned sweeps do).
func (in Input) Partitioned(pt *catalog.Partitioning) (Input, error) {
	if err := in.validate(); err != nil {
		return Input{}, err
	}
	if pt == nil {
		return Input{}, fmt.Errorf("core: Partitioned requires a partitioning")
	}
	if pt.Base() != in.Cat {
		return Input{}, fmt.Errorf("core: partitioning was not built from the input's catalog")
	}
	est, uprof, err := workload.PartitionEstimator(in.Est, pt)
	if err != nil {
		return Input{}, err
	}
	out := in
	out.Cat = pt.UnitCatalog()
	out.Est = workload.CompileEstimator(est, out.Cat)
	ps := NewProfileSet()
	ps.SetSingle(uprof)
	out.Profiles = ps
	out.LayoutCost, out.LayoutCostCompact = nil, nil
	out.LowerBound, out.CompactBound = nil, nil
	return out, nil
}

// PartitionedResult is a unit-granular recommendation: the inner Result's
// Layout is keyed by the partitioning's unit catalog.
type PartitionedResult struct {
	// Result is the unit-granular search result.
	*Result
	// Partitioning maps the units back to their objects.
	Partitioning *catalog.Partitioning
}

// ObjectLayout collapses the recommended unit layout back to object
// granularity. ok=false means the recommendation is genuinely sub-object —
// some object's units landed on different classes — and has no lossless
// object form.
func (r *PartitionedResult) ObjectLayout() (catalog.Layout, bool) {
	if r.Result == nil || r.Result.Layout == nil {
		return nil, false
	}
	return r.Partitioning.CollapseLayout(r.Result.Layout)
}

// SplitObjects returns how many objects the recommendation actually
// splits across storage classes — the count of objects whose units
// disagree.
func (r *PartitionedResult) SplitObjects() int {
	if r.Result == nil || r.Result.Layout == nil {
		return 0
	}
	split := 0
	for _, o := range r.Partitioning.Base().Objects() {
		us := r.Partitioning.UnitsOf(o.ID)
		for _, u := range us[1:] {
			if r.Result.Layout[u] != r.Result.Layout[us[0]] {
				split++
				break
			}
		}
	}
	return split
}

// OptimizePartitioned runs DOT at partition granularity: the input is
// lowered onto the partitioning's unit catalog and OptimizeBest searches
// per-unit placements — a hot extent can land on a fast class while its
// cold tail ships to a cheap one. With an identity partitioning the unit
// problem mirrors the object problem object for object (same sizes, same
// dense IDs), and uniform or expanded layouts price bit-identically on
// both the map and the compiled path.
func OptimizePartitioned(in Input, pt *catalog.Partitioning, opts Options) (*PartitionedResult, error) {
	uin, err := in.Partitioned(pt)
	if err != nil {
		return nil, err
	}
	res, err := OptimizeBest(uin, opts)
	if err != nil {
		return nil, err
	}
	return &PartitionedResult{Result: res, Partitioning: pt}, nil
}
