package provision

import (
	"math"
	"testing"

	"dotprov/internal/catalog"
	"dotprov/internal/core"
	"dotprov/internal/device"
	"dotprov/internal/workload"
)

// compiledSweepBase is sweepBase with a compilable estimator
// (workload.ObservedEstimator), so SweepConfigurations runs its candidate
// searches on the search engine's compiled path.
func compiledSweepBase(t *testing.T, grid Grid, workers int) core.Input {
	t.Helper()
	in, counting := sweepBase(t, grid, workers)
	in.Est = &workload.ObservedEstimator{
		Box:         grid.Universe(),
		Concurrency: 1,
		PerQuery:    []workload.QueryObservation{{Profile: counting.prof}},
	}
	return in
}

// TestSweepCompiledMatchesMap: the full §5 grid sweep must pick the same
// winner with bit-identical TOCs on the compiled path as with NoCompile, at
// any worker width, and spend the same number of underlying estimator
// calls (the shared memo dedups identically on both paths).
func TestSweepCompiledMatchesMap(t *testing.T) {
	grid := sweepGrid()
	opts := core.Options{RelativeSLA: 0.25}
	run := func(noCompile bool, workers int) *Choice {
		in := compiledSweepBase(t, grid, workers)
		in.NoCompile = noCompile
		ch, err := SweepConfigurations(in, grid, opts)
		if err != nil {
			t.Fatal(err)
		}
		return ch
	}
	want := run(true, 1)
	for _, workers := range []int{1, 8} {
		got := run(false, workers)
		if got.Best != want.Best || got.Evaluated != want.Evaluated {
			t.Fatalf("workers=%d: compiled sweep best=%d evaluated=%d, map best=%d evaluated=%d",
				workers, got.Best, got.Evaluated, want.Best, want.Evaluated)
		}
		if got.EstimatorCalls != want.EstimatorCalls {
			t.Fatalf("workers=%d: compiled sweep estimator calls %d, map %d",
				workers, got.EstimatorCalls, want.EstimatorCalls)
		}
		for i := range want.Results {
			a, b := got.Results[i], want.Results[i]
			if a.Result.Feasible != b.Result.Feasible {
				t.Fatalf("workers=%d candidate %q: feasibility diverged", workers, a.Name)
			}
			if math.Float64bits(a.Result.TOCCents) != math.Float64bits(b.Result.TOCCents) {
				t.Fatalf("workers=%d candidate %q: TOC %v vs %v", workers, a.Name, a.Result.TOCCents, b.Result.TOCCents)
			}
			if !a.Result.Layout.Equal(b.Result.Layout) {
				t.Fatalf("workers=%d candidate %q: layouts diverged", workers, a.Name)
			}
		}
	}
}

// TestDiscreteCostModelsParity: the compact form of the §5.2 model must
// price every layout bit-identically to the map form, including the
// degenerate alpha endpoints.
func TestDiscreteCostModelsParity(t *testing.T) {
	grid := sweepGrid()
	in := compiledSweepBase(t, grid, 1)
	box := grid.Universe()
	for _, alpha := range []float64{0, 0.35, 1} {
		mapModel, compactModel, err := DiscreteCostModels(in.Cat, box, alpha)
		if err != nil {
			t.Fatal(err)
		}
		for _, cls := range box.Classes() {
			l := catalog.NewUniformLayout(in.Cat, cls)
			l[1] = device.HSSD // mixed layout
			want, err := mapModel(l)
			if err != nil {
				t.Fatal(err)
			}
			cl, ok := catalog.CompactFromLayout(in.Cat, l)
			if !ok {
				t.Fatal("layout must encode")
			}
			got, err := compactModel(cl)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("alpha=%g class=%v: map %v vs compact %v", alpha, cls, want, got)
			}
		}
	}
	if _, _, err := DiscreteCostModels(in.Cat, box, 1.5); err == nil {
		t.Fatal("alpha out of range must error")
	}
}
