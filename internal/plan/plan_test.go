package plan

import (
	"strings"
	"testing"
	"testing/quick"

	"dotprov/internal/types"
)

func TestPredMatches(t *testing.T) {
	cases := []struct {
		p    Pred
		v    types.Value
		want bool
	}{
		{Pred{Op: Eq, Lo: types.NewInt(5)}, types.NewInt(5), true},
		{Pred{Op: Eq, Lo: types.NewInt(5)}, types.NewInt(6), false},
		{Pred{Op: Lt, Lo: types.NewInt(5)}, types.NewInt(4), true},
		{Pred{Op: Lt, Lo: types.NewInt(5)}, types.NewInt(5), false},
		{Pred{Op: Le, Lo: types.NewInt(5)}, types.NewInt(5), true},
		{Pred{Op: Gt, Lo: types.NewInt(5)}, types.NewInt(6), true},
		{Pred{Op: Ge, Lo: types.NewInt(5)}, types.NewInt(5), true},
		{Pred{Op: Ge, Lo: types.NewInt(5)}, types.NewInt(4), false},
		{Pred{Op: Between, Lo: types.NewInt(2), Hi: types.NewInt(4)}, types.NewInt(3), true},
		{Pred{Op: Between, Lo: types.NewInt(2), Hi: types.NewInt(4)}, types.NewInt(2), true},
		{Pred{Op: Between, Lo: types.NewInt(2), Hi: types.NewInt(4)}, types.NewInt(4), true},
		{Pred{Op: Between, Lo: types.NewInt(2), Hi: types.NewInt(4)}, types.NewInt(5), false},
		{Pred{Op: Eq, Lo: types.NewString("x")}, types.NewString("x"), true},
	}
	for i, c := range cases {
		if got := c.p.Matches(c.v); got != c.want {
			t.Errorf("case %d: %v.Matches(%v) = %v, want %v", i, c.p, c.v, got, c.want)
		}
	}
}

// Property: Between(lo, hi) equals Ge(lo) AND Le(hi).
func TestBetweenDecompositionProperty(t *testing.T) {
	f := func(lo, hi, v int32) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		b := Pred{Op: Between, Lo: types.NewInt(int64(lo)), Hi: types.NewInt(int64(hi))}
		ge := Pred{Op: Ge, Lo: types.NewInt(int64(lo))}
		le := Pred{Op: Le, Lo: types.NewInt(int64(hi))}
		val := types.NewInt(int64(v))
		return b.Matches(val) == (ge.Matches(val) && le.Matches(val))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func validQuery() *Query {
	return &Query{
		Name:   "q",
		Tables: []string{"orders", "lineitem"},
		Preds:  []Pred{{Table: "orders", Column: "o_orderdate", Op: Lt, Lo: types.NewDate(100)}},
		Joins: []EquiJoin{{
			LeftTable: "orders", LeftColumn: "o_orderkey",
			RightTable: "lineitem", RightColumn: "l_orderkey",
		}},
		Aggs: []Agg{{Func: Count}},
	}
}

func TestQueryValidate(t *testing.T) {
	if err := validQuery().Validate(); err != nil {
		t.Fatal(err)
	}
	q := validQuery()
	q.Tables = nil
	if q.Validate() == nil {
		t.Error("empty FROM should fail")
	}
	q = validQuery()
	q.Preds[0].Table = "nope"
	if q.Validate() == nil {
		t.Error("pred on unknown table should fail")
	}
	q = validQuery()
	q.Joins[0].RightTable = "nope"
	if q.Validate() == nil {
		t.Error("join on unknown table should fail")
	}
	q = validQuery()
	q.Joins[0].RightTable = "orders"
	if q.Validate() == nil {
		t.Error("self join should fail")
	}
	q = validQuery()
	q.Tables = []string{"orders", "orders"}
	if q.Validate() == nil {
		t.Error("duplicate table should fail")
	}
	q = validQuery()
	q.GroupBy = []ColRef{{Table: "zz", Column: "c"}}
	if q.Validate() == nil {
		t.Error("group-by unknown table should fail")
	}
	q = validQuery()
	q.Aggs = []Agg{{Func: Sum, Table: "zz", Column: "c"}}
	if q.Validate() == nil {
		t.Error("agg on unknown table should fail")
	}
}

func TestQueryHelpers(t *testing.T) {
	q := validQuery()
	if !q.HasTable("orders") || q.HasTable("nation") {
		t.Error("HasTable wrong")
	}
	if got := q.TablePreds("orders"); len(got) != 1 {
		t.Errorf("TablePreds(orders) = %d preds, want 1", len(got))
	}
	if got := q.TablePreds("lineitem"); len(got) != 0 {
		t.Errorf("TablePreds(lineitem) = %d preds, want 0", len(got))
	}
	s := q.String()
	for _, frag := range []string{"count(*)", "from orders, lineitem", "o_orderkey = lineitem.l_orderkey"} {
		if !strings.Contains(s, frag) {
			t.Errorf("query string %q missing %q", s, frag)
		}
	}
}

func TestNodeSchemas(t *testing.T) {
	scan := &SeqScan{
		Table: "t", Cols: []ColRef{{"t", "a"}, {"t", "b"}}, Rows: 100,
	}
	if len(scan.Schema()) != 2 || scan.EstRows() != 100 {
		t.Fatal("SeqScan schema/rows wrong")
	}
	inner := &SeqScan{Table: "u", Cols: []ColRef{{"u", "x"}}, Rows: 10}
	hj := &Join{Algo: HashJoin, Outer: scan, Inner: inner,
		OuterCol: ColRef{"t", "a"}, InnerCol: ColRef{"u", "x"}, Rows: 42}
	if got := hj.Schema(); len(got) != 3 || got[2] != (ColRef{"u", "x"}) {
		t.Fatalf("HashJoin schema = %v", got)
	}
	inlj := &Join{Algo: IndexNLJoin, Outer: scan, OuterCol: ColRef{"t", "a"},
		InnerTable: "u", InnerIndex: "u_pkey", InnerCols: []ColRef{{"u", "x"}}, Rows: 7}
	if got := inlj.Schema(); len(got) != 3 {
		t.Fatalf("INLJ schema = %v", got)
	}
	agg := &AggNode{Input: hj, GroupBy: []ColRef{{"t", "a"}},
		Aggs: []Agg{{Func: Sum, Table: "u", Column: "x"}}, Rows: 5}
	if got := agg.Schema(); len(got) != 2 || got[0] != (ColRef{"t", "a"}) {
		t.Fatalf("Agg schema = %v", got)
	}
	lim := &LimitNode{Input: agg, N: 3}
	if lim.EstRows() != 3 {
		t.Fatalf("Limit rows = %g, want 3", lim.EstRows())
	}
	lim2 := &LimitNode{Input: agg, N: 100}
	if lim2.EstRows() != 5 {
		t.Fatalf("Limit should not raise estimate: %g", lim2.EstRows())
	}
	if len(lim.Schema()) != len(agg.Schema()) {
		t.Fatal("Limit schema should pass through")
	}
}

func TestPlanJoinAlgosAndExplain(t *testing.T) {
	scanA := &SeqScan{Table: "a", Cols: []ColRef{{"a", "k"}}, Rows: 10}
	scanB := &SeqScan{Table: "b", Cols: []ColRef{{"b", "k"}}, Rows: 20}
	hj := &Join{Algo: HashJoin, Outer: scanA, Inner: scanB,
		OuterCol: ColRef{"a", "k"}, InnerCol: ColRef{"b", "k"}, Rows: 15}
	inlj := &Join{Algo: IndexNLJoin, Outer: hj, OuterCol: ColRef{"a", "k"},
		InnerTable: "c", InnerIndex: "c_pkey", InnerCols: []ColRef{{"c", "v"}}, Rows: 15}
	p := &Plan{
		Query: &Query{Name: "test-q", Tables: []string{"a", "b", "c"}},
		Root:  &LimitNode{Input: &AggNode{Input: inlj, Aggs: []Agg{{Func: Count}}, Rows: 1}, N: 1},
	}
	algos := p.JoinAlgos()
	if len(algos) != 2 || algos[0] != IndexNLJoin || algos[1] != HashJoin {
		t.Fatalf("JoinAlgos = %v", algos)
	}
	exp := p.Explain()
	for _, frag := range []string{"test-q", "INLJ", "HJ", "SeqScan(a)", "IndexProbe(c via c_pkey)", "Limit 1"} {
		if !strings.Contains(exp, frag) {
			t.Errorf("Explain missing %q:\n%s", frag, exp)
		}
	}
}

func TestEstimateTime(t *testing.T) {
	e := Estimate{IOTime: 100, CPUTime: 23}
	if e.Time() != 123 {
		t.Fatalf("Time = %v", e.Time())
	}
}

func TestStringers(t *testing.T) {
	if HashJoin.String() != "HJ" || IndexNLJoin.String() != "INLJ" {
		t.Error("JoinAlgo strings wrong")
	}
	ops := map[CmpOp]string{Eq: "=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=", Between: "between"}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%v string = %q, want %q", op, op.String(), want)
		}
	}
	fns := map[AggFunc]string{Count: "count", Sum: "sum", Min: "min", Max: "max", Avg: "avg"}
	for fn, want := range fns {
		if fn.String() != want {
			t.Errorf("AggFunc string = %q, want %q", fn.String(), want)
		}
	}
	if (ColRef{"t", "c"}).String() != "t.c" {
		t.Error("ColRef string wrong")
	}
}
