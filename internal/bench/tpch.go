package bench

import (
	"fmt"
	"io"

	"dotprov/internal/catalog"
	"dotprov/internal/core"
	"dotprov/internal/device"
	"dotprov/internal/engine"
	"dotprov/internal/plan"
	"dotprov/internal/profiler"
	"dotprov/internal/tpch"
	"dotprov/internal/workload"
)

// tpchEnv is a built TPC-H database on one box with a workload.
type tpchEnv struct {
	db   *engine.DB
	box  *device.Box
	w    *workload.DSS
	ps   *core.ProfileSet
	est  workload.Estimator
	base workload.Metrics // measured on All H-SSD
}

func newTpchEnv(box *device.Box, opts Options, modified bool, subset bool) (*tpchEnv, error) {
	db := engine.New(box, engine.DefaultPoolPages)
	cfg := tpch.Config{ScaleFactor: opts.TpchSF, Seed: opts.TpchSeed}
	var err error
	if subset {
		err = tpch.BuildSubset(db, cfg)
	} else {
		err = tpch.Build(db, cfg)
	}
	if err != nil {
		return nil, err
	}
	var w *workload.DSS
	switch {
	case subset:
		w = tpch.SubsetWorkload(cfg, opts.TpchSeed+1)
	case modified:
		w = tpch.ModifiedWorkload(cfg, opts.TpchSeed+1)
	default:
		w = tpch.OriginalWorkload(cfg, opts.TpchSeed+1)
	}
	// Keep the DB-to-buffer ratio near the paper's 30 GB vs 4 GB.
	pool := db.TotalPages() / 8
	if pool < 32 {
		pool = 32
	}
	db.ResizePool(pool)
	if err := db.SetLayout(catalog.NewUniformLayout(db.Cat, device.HSSD)); err != nil {
		return nil, err
	}
	base, _, err := w.Run(db)
	if err != nil {
		return nil, err
	}
	ps, err := profiler.ProfileDSSEstimates(db, w)
	if err != nil {
		return nil, err
	}
	return &tpchEnv{db: db, box: box, w: w, ps: ps, est: w.Estimator(db), base: base}, nil
}

func (e *tpchEnv) input() core.Input {
	return core.Input{Cat: e.db.Cat, Box: e.box, Est: e.est, Profiles: e.ps, Concurrency: 1}
}

// measure runs the workload on a layout and builds the figure row.
func (e *tpchEnv) measure(name string, l catalog.Layout, cons workload.Constraints) (LayoutRow, error) {
	if err := e.db.SetLayout(l); err != nil {
		return LayoutRow{}, err
	}
	m, _, err := e.w.Run(e.db)
	if err != nil {
		return LayoutRow{}, err
	}
	toc, err := measuredTOC(l, e.db.Cat, e.box, m.Elapsed)
	if err != nil {
		return LayoutRow{}, err
	}
	inlj, err := e.inljShare(l)
	if err != nil {
		return LayoutRow{}, err
	}
	return LayoutRow{
		Name:     name,
		Elapsed:  m.Elapsed,
		TOCCents: toc,
		PSR:      cons.PSR(m),
		INLJPct:  inlj,
	}, nil
}

// inljShare reports the fraction of joins planned as indexed nested-loop
// joins under a layout (the paper's %INLJ observation, §4.4.2).
func (e *tpchEnv) inljShare(l catalog.Layout) (float64, error) {
	var joins, inlj int
	for _, q := range e.w.Queries {
		pl, err := e.db.PlanUnder(q, l)
		if err != nil {
			return 0, err
		}
		for _, a := range pl.JoinAlgos() {
			joins++
			if a == plan.IndexNLJoin {
				inlj++
			}
		}
	}
	if joins == 0 {
		return 0, nil
	}
	return float64(inlj) / float64(joins), nil
}

// runTPCHFigure produces Figures 3/5/7 (and the layouts for 4/6): the
// cost/performance comparison of simple layouts, OA and DOT at one relative
// SLA, on both boxes.
func runTPCHFigure(w io.Writer, opts Options, id string, modified bool, sla float64) (*FigureResult, error) {
	fig := &FigureResult{ID: id, Layouts: map[string]string{}}
	for _, box := range boxes() {
		env, err := newTpchEnv(box, opts, modified, false)
		if err != nil {
			return nil, err
		}
		cons := workload.Constraints{Relative: sla, Baseline: env.base}

		for _, nl := range core.SimpleLayouts(env.db.Cat, box) {
			row, err := env.measure(nl.Name, nl.Layout, cons)
			if err != nil {
				return nil, err
			}
			fig.addRow(box.Name, row)
		}

		oaLayout, err := core.ObjectAdvisor(env.input())
		if err != nil {
			return nil, err
		}
		oaRow, err := env.measure("OA", oaLayout, cons)
		if err != nil {
			return nil, err
		}
		fig.addRow(box.Name, oaRow)

		// DOT derives its constraints in estimate space (estimated L0 as
		// the reference), then the validation phase test-runs the
		// recommendation and refines on a miss (paper Fig. 2).
		res, val, err := core.OptimizeValidated(env.input(), core.Options{RelativeSLA: sla}, &dssRunner{env: env}, 3)
		if err != nil {
			return nil, err
		}
		if !res.Feasible {
			fig.note("%s: DOT found no feasible layout at SLA %g", box.Name, sla)
			continue
		}
		dotRow, err := env.measure("DOT", res.Layout, cons)
		if err != nil {
			return nil, err
		}
		fig.addRow(box.Name, dotRow)
		fig.Layouts[fmt.Sprintf("DOT %s (SLA %g)", box.Name, sla)] = res.Layout.String(env.db.Cat)
		fig.note("%s: DOT optimization took %v over %d layouts (validated PSR %.0f%%)",
			box.Name, res.PlanTime, res.Evaluated, val.PSR*100)
	}
	fig.print(w)
	return fig, nil
}

// Figure3 reproduces Fig. 3 (original TPC-H, relative SLA 0.5); the DOT
// layouts it records are Fig. 4.
func Figure3(w io.Writer, opts Options) (*FigureResult, error) {
	return runTPCHFigure(w, opts, "Figure 3: original TPC-H, relative SLA 0.5", false, 0.5)
}

// Figure5 reproduces Fig. 5 (modified TPC-H, relative SLA 0.5); its DOT
// layouts are Fig. 6.
func Figure5(w io.Writer, opts Options) (*FigureResult, error) {
	return runTPCHFigure(w, opts, "Figure 5: modified TPC-H, relative SLA 0.5", true, 0.5)
}

// Figure7 reproduces Fig. 7 (modified TPC-H, relative SLA 0.25).
func Figure7(w io.Writer, opts Options) (*FigureResult, error) {
	return runTPCHFigure(w, opts, "Figure 7: modified TPC-H, relative SLA 0.25", true, 0.25)
}

// Sec443 reproduces the §4.4.3 comparison: DOT vs exhaustive search on the
// 11-template subset workload over 8 objects, with capacity limits on the
// box's cheapest (spinning) class, comparing recommendation quality and
// planning time.
func Sec443(w io.Writer, opts Options) (*FigureResult, error) {
	fig := &FigureResult{ID: "Sec 4.4.3: DOT vs exhaustive search (TPC-H subset)", Layouts: map[string]string{}}
	for _, box := range boxes() {
		env, err := newTpchEnv(box, opts, false, true)
		if err != nil {
			return nil, err
		}
		cheapest := box.Cheapest().Class
		// Paper: capacity limits around 0.8x of the space ES wants on the
		// cheap class, then halved.
		dbSize := env.db.Cat.TotalSize()
		for _, frac := range []float64{0, 0.8, 0.4} {
			label := "no limit"
			b := box
			if frac > 0 {
				label = fmt.Sprintf("cap %.0f%% of DB", frac*100)
				if err := b.SetCapacity(cheapest, int64(frac*float64(dbSize))); err != nil {
					return nil, err
				}
			}
			cons := workload.Constraints{Relative: 0.5, Baseline: env.base}
			dot, err := core.Optimize(env.input(), core.Options{RelativeSLA: 0.5})
			if err != nil {
				return nil, err
			}
			es, err := core.Exhaustive(env.input(), core.Options{RelativeSLA: 0.5})
			if err != nil {
				return nil, err
			}
			for _, pair := range []struct {
				name string
				res  *core.Result
			}{{"DOT " + label, dot}, {"ES " + label, es}} {
				if !pair.res.Feasible {
					fig.note("%s %s: infeasible", box.Name, pair.name)
					continue
				}
				row, err := env.measure(pair.name, pair.res.Layout, cons)
				if err != nil {
					return nil, err
				}
				fig.addRow(box.Name, row)
				fig.note("%s %s: plan time %v over %d layouts", box.Name, pair.name,
					pair.res.PlanTime, pair.res.Evaluated)
			}
		}
	}
	fig.print(w)
	return fig, nil
}

// Provision reproduces §5.1: choose between the Box 1 and Box 2
// configurations for the original TPC-H workload.
func Provision(w io.Writer, opts Options) (*FigureResult, error) {
	fig := &FigureResult{ID: "Sec 5.1: generalized provisioning (pick the box)", Layouts: map[string]string{}}
	var cands []provisionCand
	for _, box := range boxes() {
		env, err := newTpchEnv(box, opts, false, false)
		if err != nil {
			return nil, err
		}
		cands = append(cands, provisionCand{env: env})
	}
	best := -1
	for i, c := range cands {
		res, err := core.Optimize(c.env.input(), core.Options{RelativeSLA: 0.5})
		if err != nil {
			return nil, err
		}
		cands[i].res = res
		if res.Feasible && (best < 0 || res.TOCCents < cands[best].res.TOCCents) {
			best = i
		}
		fig.addRow(c.env.box.Name, LayoutRow{
			Name:     "DOT recommendation",
			Elapsed:  res.Metrics.Elapsed,
			TOCCents: res.TOCCents,
			PSR:      1,
		})
	}
	if best >= 0 {
		fig.note("chosen configuration: %s (estimated TOC %.4e cents)",
			cands[best].env.box.Name, cands[best].res.TOCCents)
		fig.Layouts["chosen "+cands[best].env.box.Name] = cands[best].res.Layout.String(cands[best].env.db.Cat)
	}
	fig.print(w)
	return fig, nil
}

type provisionCand struct {
	env *tpchEnv
	res *core.Result
}

// Discrete reproduces §5.2: DOT under the discrete-sized cost model for a
// sweep of alpha values on Box 1.
func Discrete(w io.Writer, opts Options, alphas []float64, model func(in core.Input, alpha float64) (core.Input, error)) (*FigureResult, error) {
	fig := &FigureResult{ID: "Sec 5.2: discrete-sized storage cost model", Layouts: map[string]string{}}
	env, err := newTpchEnv(device.Box1(), opts, false, false)
	if err != nil {
		return nil, err
	}
	for _, a := range alphas {
		in, err := model(env.input(), a)
		if err != nil {
			return nil, err
		}
		res, err := core.OptimizeBest(in, core.Options{RelativeSLA: 0.5})
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("alpha=%.2f", a)
		if !res.Feasible {
			fig.note("%s: infeasible", name)
			continue
		}
		fig.addRow(env.box.Name, LayoutRow{
			Name:     name,
			Elapsed:  res.Metrics.Elapsed,
			TOCCents: res.TOCCents,
			PSR:      1,
		})
		fig.Layouts[name] = res.Layout.String(env.db.Cat)
	}
	fig.print(w)
	return fig, nil
}

// dssRunner adapts the TPC-H environment to the validation phase's Runner.
type dssRunner struct {
	env *tpchEnv
}

// Run implements core.Runner: a cold test run of the workload on l with
// per-query statistics for the refinement phase.
func (r *dssRunner) Run(l catalog.Layout) (workload.Observation, error) {
	if err := r.env.db.SetLayout(l); err != nil {
		return workload.Observation{}, err
	}
	return r.env.w.RunDetailed(r.env.db)
}
