// Package vclock provides a virtual time source for the storage simulator.
//
// The reproduction does not sleep for real I/O latencies; instead every
// simulated device operation advances a virtual clock by the device's
// calibrated service time. Response times, throughput and TOC are read off
// this clock. Each worker (simulated DB connection) owns its own Clock;
// the elapsed time of a concurrent workload is the maximum across workers,
// matching how wall-clock time behaves for real concurrent clients.
package vclock

import "time"

// Clock accumulates virtual time. The zero value is a clock at time zero,
// ready to use.
type Clock struct {
	ns int64
}

// Advance moves the clock forward by d. Negative durations are ignored so
// that rounding noise in derived service times can never move time backwards.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.ns += int64(d)
	}
}

// Now reports the current virtual time as an offset from the clock's origin.
func (c *Clock) Now() time.Duration {
	return time.Duration(c.ns)
}

// Reset rewinds the clock to its origin.
func (c *Clock) Reset() {
	c.ns = 0
}

// Max returns the largest current time among the given clocks. It is the
// elapsed wall-clock equivalent for a set of concurrent workers that all
// started at time zero. Max of no clocks is zero.
func Max(clocks ...*Clock) time.Duration {
	var m time.Duration
	for _, c := range clocks {
		if t := c.Now(); t > m {
			m = t
		}
	}
	return m
}

// Sum returns the total virtual time across clocks. It is the aggregate
// device busy time, useful for utilisation accounting.
func Sum(clocks ...*Clock) time.Duration {
	var s time.Duration
	for _, c := range clocks {
		s += c.Now()
	}
	return s
}
