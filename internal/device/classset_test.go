package device

import (
	"reflect"
	"testing"
)

// TestClassSetOps covers the bitmask algebra: membership, add/remove,
// counting, singleton detection, and member listing.
func TestClassSetOps(t *testing.T) {
	s := NewClassSet(HDD, HSSD)
	if !s.Has(HDD) || !s.Has(HSSD) || s.Has(LSSD) {
		t.Fatalf("membership wrong for %v", s)
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d, want 2", s.Count())
	}
	if s.IsSingleton() {
		t.Fatalf("%v reported singleton", s)
	}
	if _, ok := s.Single(); ok {
		t.Fatalf("Single succeeded on %v", s)
	}
	if got := s.Add(LSSD).Count(); got != 3 {
		t.Fatalf("Add: count %d, want 3", got)
	}
	if got := s.Remove(HSSD); got != Singleton(HDD) {
		t.Fatalf("Remove(HSSD) = %v, want {HDD}", got)
	}
	// Add and Remove are idempotent.
	if s.Add(HDD) != s || s.Remove(LSSD) != s {
		t.Fatal("Add/Remove of present/absent member changed the set")
	}
	if got := s.Classes(); !reflect.DeepEqual(got, []Class{HDD, HSSD}) {
		t.Fatalf("Classes = %v", got)
	}
	if got := s.String(); got != "{HDD, H-SSD}" {
		t.Fatalf("String = %q", got)
	}
}

// TestClassSetSingleton: singleton masks round-trip through Single and
// are valid placements; the empty set is not.
func TestClassSetSingleton(t *testing.T) {
	for c := Class(0); int(c) < NumClasses; c++ {
		s := Singleton(c)
		if !s.Valid() || !s.IsSingleton() {
			t.Fatalf("Singleton(%v) = %v not a valid singleton", c, s)
		}
		got, ok := s.Single()
		if !ok || got != c {
			t.Fatalf("Single of %v = %v, %v", s, got, ok)
		}
	}
	var empty ClassSet
	if empty.Valid() || empty.IsSingleton() || empty.Count() != 0 {
		t.Fatal("empty set must be invalid with zero members")
	}
	if empty.String() != "{}" {
		t.Fatalf("empty String = %q", empty.String())
	}
}

// TestEnumerateClassSets: ascending mask order, availability filtering,
// and the replica cap. With maxReplicas=1 the enumeration must visit the
// available classes as singletons in ascending class order — the invariant
// the singleton-parity guarantee of the replicated search rests on.
func TestEnumerateClassSets(t *testing.T) {
	avail := []Class{HDD, LSSD, HSSD}

	ones := EnumerateClassSets(avail, 1)
	want1 := []ClassSet{Singleton(HDD), Singleton(LSSD), Singleton(HSSD)}
	if !reflect.DeepEqual(ones, want1) {
		t.Fatalf("maxReplicas=1: %v, want %v", ones, want1)
	}

	all := EnumerateClassSets(avail, 0) // no cap
	if len(all) != 7 {                  // 2^3 - 1 non-empty subsets
		t.Fatalf("uncapped enumeration has %d sets, want 7", len(all))
	}
	for i, s := range all {
		if !s.Valid() {
			t.Fatalf("enumerated invalid set %v", s)
		}
		if s&^NewClassSet(avail...) != 0 {
			t.Fatalf("set %v uses unavailable classes", s)
		}
		if i > 0 && all[i-1] >= s {
			t.Fatalf("enumeration not in ascending mask order at %d", i)
		}
	}

	twos := EnumerateClassSets(avail, 2)
	if len(twos) != 6 { // 3 singletons + 3 pairs
		t.Fatalf("maxReplicas=2: %d sets, want 6", len(twos))
	}
	for _, s := range twos {
		if s.Count() > 2 {
			t.Fatalf("set %v exceeds the replica cap", s)
		}
	}
}
