package serve

import (
	"bytes"
	"encoding/binary"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dotprov/internal/faultinject"
	"dotprov/internal/online"
)

// snapServer builds a snapshot-enabled server over dir with an idle
// ticker (an hour), so tests control exactly when snapshots happen.
func snapServer(t *testing.T, dir string, fsys faultinject.FS, degradeAfter int) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{
		Workers:       2,
		SnapshotDir:   dir,
		SnapshotEvery: time.Hour,
		SnapshotFS:    fsys,
		DegradeAfter:  degradeAfter,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Close() })
	return s, ts
}

// defineStream defines an initialized OLTP stream over the wire and
// returns the define response.
func defineStream(t *testing.T, ts *httptest.Server, name string) ObserveResponse {
	t.Helper()
	var out ObserveResponse
	req := ObserveRequest{Stream: name, Workload: oltpObserveSpec(1, 0), Box: "box1", SLA: 0.25}
	if status := post(t, ts, "/v1/observe", req, &out); status != http.StatusOK || !out.Initialized {
		t.Fatalf("define %s: status=%d %+v", name, status, out)
	}
	return out
}

// forcedReadvise runs a forced re-advise and zeroes the one wall-clock
// field, so decisions can be compared bit-for-bit across servers.
func forcedReadvise(t *testing.T, ts *httptest.Server, name string) ReadviseResponse {
	t.Helper()
	var out ReadviseResponse
	if status := post(t, ts, "/v1/readvise", ReadviseRequest{Stream: name, Force: true}, &out); status != http.StatusOK {
		t.Fatalf("forced readvise %s: status=%d", name, status)
	}
	out.PlanMillis = 0
	return out
}

// TestServerSnapshotRestore is the tentpole's end-to-end invariant: a
// server snapshots its online plane on Close, a restarted server restores
// it before taking traffic, and two independent restores of the same
// generation produce BIT-IDENTICAL forced re-advise decisions — the
// restored stream resumes drift detection mid-window, it does not start
// cold.
func TestServerSnapshotRestore(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := snapServer(t, dir, nil, 0)
	defineStream(t, ts1, "orders")
	// Drift the stream: two windows with a sequential-scan-heavy mix.
	for i := 0; i < 2; i++ {
		var out ObserveResponse
		req := ObserveRequest{Stream: "orders", Workload: oltpObserveSpec(1, 0.8)}
		if status := post(t, ts1, "/v1/observe", req, &out); status != http.StatusOK {
			t.Fatalf("drift window %d: status=%d", i, status)
		}
	}
	observed := s1.observed.Load()
	if err := s1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if s1.snapGen.Load() == 0 {
		t.Fatal("close wrote no snapshot generation")
	}

	_, ts2 := snapServer(t, dir, nil, 0)
	var h HealthResponse
	getJSON(t, ts2, "/v1/healthz", &h)
	if h.Restored != 1 || h.SnapshotGen == 0 {
		t.Fatalf("restored=%d generation=%d, want 1 stream from a nonzero generation", h.Restored, h.SnapshotGen)
	}
	if h.Observed != observed {
		t.Fatalf("restored observed=%d, want %d", h.Observed, observed)
	}

	// Second independent restore of the SAME generation (before s2 writes
	// any new one): decisions must match s2's bit for bit.
	s3, ts3 := snapServer(t, dir, nil, 0)
	_ = s3
	r2 := forcedReadvise(t, ts2, "orders")
	r3 := forcedReadvise(t, ts3, "orders")
	if !reflect.DeepEqual(r2, r3) {
		t.Fatalf("re-advise decisions diverged after recovery:\n%+v\n%+v", r2, r3)
	}
	if !r2.Drift.Drifted {
		t.Fatal("restored stream lost its drift state: forced re-advise saw no drift")
	}

	// The restored stream keeps working: another window and a readvise.
	var out ObserveResponse
	if status := post(t, ts2, "/v1/observe", ObserveRequest{Stream: "orders", Workload: oltpObserveSpec(1, 0.8)}, &out); status != http.StatusOK {
		t.Fatalf("post-restore observe: status=%d", status)
	}
}

// TestSnapshotPayloadRoundTrip: a live server's exported payload decodes
// back to itself and re-encodes bit-identically — the canonical-codec
// property FuzzDecodeSnapshot generalizes.
func TestSnapshotPayloadRoundTrip(t *testing.T) {
	s, ts := snapServer(t, t.TempDir(), nil, 0)
	defineStream(t, ts, "orders")
	_ = s

	p := s.exportPayload()
	if len(p.streams) != 1 {
		t.Fatalf("exported %d streams, want 1", len(p.streams))
	}
	enc := appendSnapshotPayload(nil, p)
	dec, err := decodeSnapshotPayload(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(normPayload(dec), normPayload(p)) {
		t.Fatalf("payload did not round-trip:\n%+v\n%+v", dec, p)
	}
	if re := appendSnapshotPayload(nil, dec); !bytes.Equal(re, enc) {
		t.Fatal("re-encode differs from the original bytes")
	}
}

// normPayload canonicalizes nil-vs-empty distinctions the wire cannot
// preserve inside the manager states.
func normPayload(p snapshotPayload) snapshotPayload {
	for i := range p.streams {
		st := &p.streams[i].state
		if len(st.Layout) == 0 {
			st.Layout = nil
		}
		if len(st.Collector.Extents) == 0 {
			st.Collector.Extents = nil
		}
		if len(st.Collector.Closed) == 0 {
			st.Collector.Closed = nil
		}
	}
	return p
}

func TestDecodeSnapshotPayloadRejects(t *testing.T) {
	s, ts := snapServer(t, t.TempDir(), nil, 0)
	defineStream(t, ts, "orders")
	valid := appendSnapshotPayload(nil, s.exportPayload())
	corrupt := func(mut func(b []byte)) []byte {
		b := bytes.Clone(valid)
		mut(b)
		return b
	}
	cases := map[string][]byte{
		"empty":            {},
		"truncated":        valid[:len(valid)-3],
		"trailing garbage": append(bytes.Clone(valid), 0),
		"negative counter": corrupt(func(b []byte) { b[7] = 0x80 }),
		"stream count lies": corrupt(func(b []byte) {
			binary.LittleEndian.PutUint32(b[32:], 1<<30)
		}),
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := decodeSnapshotPayload(body); err == nil {
				t.Fatalf("decoder accepted %s", name)
			}
		})
	}
	t.Run("unsorted names", func(t *testing.T) {
		p := s.exportPayload()
		p.streams = append(p.streams, p.streams[0]) // duplicate name "orders"
		if _, err := decodeSnapshotPayload(appendSnapshotPayload(nil, p)); err == nil {
			t.Fatal("decoder accepted duplicate stream names")
		}
	})
	t.Run("non-json config", func(t *testing.T) {
		p := s.exportPayload()
		p.streams[0].config = []byte("{not json")
		if _, err := decodeSnapshotPayload(appendSnapshotPayload(nil, p)); err == nil {
			t.Fatal("decoder accepted a non-JSON defining observe")
		}
	})
}

// TestRecoveryFallsBackPastTornGeneration: recovery skips a torn newest
// file AND a valid-envelope generation whose payload fails to apply,
// landing on the newest generation that fully restores.
func TestRecoveryFallsBackPastTornGeneration(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := snapServer(t, dir, nil, 0)
	defineStream(t, ts1, "orders")
	gen1, err := s1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Tear the newest generation's file mid-payload.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	newest := ents[len(ents)-1]
	pathNewest := dir + "/" + newest.Name()
	b, err := os.ReadFile(pathNewest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pathNewest, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, ts2 := snapServer(t, dir, nil, 0)
	_ = s2
	var h HealthResponse
	getJSON(t, ts2, "/v1/healthz", &h)
	if h.SnapshotGen != gen1 || h.Restored != 1 {
		t.Fatalf("restored generation=%d streams=%d, want fallback to generation %d with 1 stream", h.SnapshotGen, h.Restored, gen1)
	}
}

// flakyFS is a switchable faultinject.FS: while failing, every file write
// errors — a full disk that later clears, without probabilistic plans.
type flakyFS struct {
	fail atomic.Bool
}

func (f *flakyFS) MkdirAll(path string, perm os.FileMode) error {
	return faultinject.OS.MkdirAll(path, perm)
}
func (f *flakyFS) CreateTemp(dir, pattern string) (faultinject.File, error) {
	if f.fail.Load() {
		return nil, &os.PathError{Op: "createtemp", Path: dir, Err: os.ErrPermission}
	}
	return faultinject.OS.CreateTemp(dir, pattern)
}
func (f *flakyFS) Rename(oldpath, newpath string) error {
	return faultinject.OS.Rename(oldpath, newpath)
}
func (f *flakyFS) Remove(path string) error                   { return faultinject.OS.Remove(path) }
func (f *flakyFS) ReadFile(path string) ([]byte, error)       { return faultinject.OS.ReadFile(path) }
func (f *flakyFS) ReadDir(path string) ([]fs.DirEntry, error) { return faultinject.OS.ReadDir(path) }
func (f *flakyFS) SyncDir(path string) error                  { return faultinject.OS.SyncDir(path) }

// TestDegradedMode: persistent snapshot failures flip the server to
// degraded — optimization endpoints shed with 503 + Retry-After and code
// "degraded", /v1/readyz goes 503 while /v1/healthz stays 200, cached
// provisions still answer, binary ingest stays open — and one successful
// snapshot restores readiness.
func TestDegradedMode(t *testing.T) {
	fsys := &flakyFS{}
	s, ts := snapServer(t, t.TempDir(), fsys, 2)
	defineStream(t, ts, "orders")

	// Warm the provision cache while healthy.
	preq := ProvisionRequest{
		Workload: oltpObserveSpec(1, 0),
		Grid: GridSpec{Devices: []GridDeviceSpec{
			{Class: "hdd-raid0", Counts: []int{1}},
			{Class: "hssd", Counts: []int{0, 1}},
		}},
		SLA: 0.25,
	}
	var presp ProvisionResponse
	if status := post(t, ts, "/v1/provision", preq, &presp); status != http.StatusOK {
		t.Fatalf("warm provision: status=%d", status)
	}

	fsys.fail.Store(true)
	for i := 0; i < 2; i++ {
		if _, err := s.Snapshot(); err == nil {
			t.Fatal("snapshot succeeded through a failing filesystem")
		}
	}

	// Degraded: advise sheds with the degraded code...
	status, e := postEnvelope(t, ts, "/v1/advise", AdviseRequest{Workload: oltpObserveSpec(1, 0), SLA: 0.25})
	if status != http.StatusServiceUnavailable || e.Code != "degraded" {
		t.Fatalf("degraded advise: status=%d code=%q, want 503 degraded", status, e.Code)
	}
	// ...readyz is 503 while healthz stays 200...
	resp, err := ts.Client().Get(ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("degraded readyz: status=%d retry-after=%q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	var h HealthResponse
	getJSON(t, ts, "/v1/healthz", &h)
	if h.Status != "degraded" || h.SnapshotFails != 2 {
		t.Fatalf("degraded healthz: status=%q snapshot_failures=%d", h.Status, h.SnapshotFails)
	}
	// ...the cached provision still answers...
	var cached ProvisionResponse
	if status := post(t, ts, "/v1/provision", preq, &cached); status != http.StatusOK || !cached.Cached {
		t.Fatalf("degraded cached provision: status=%d cached=%v", status, cached.Cached)
	}
	// ...an uncached provision sheds...
	uncached := preq
	uncached.SLA = 0.5
	if status, e := postEnvelope(t, ts, "/v1/provision", uncached); status != http.StatusServiceUnavailable || e.Code != "degraded" {
		t.Fatalf("degraded uncached provision: status=%d code=%q", status, e.Code)
	}
	// ...and binary ingest stays open.
	frames := online.EncodeFrames([]online.Frame{frameFromSpec(oltpObserveSpec(1, 0))})
	if status, _ := postFrames(t, ts, "orders", frames, nil); status != http.StatusAccepted {
		t.Fatalf("degraded binary observe: status=%d, want 202", status)
	}

	// One successful snapshot clears degradation.
	fsys.fail.Store(false)
	if _, err := s.Snapshot(); err != nil {
		t.Fatalf("recovery snapshot: %v", err)
	}
	var rz ReadyResponse
	getJSON(t, ts, "/v1/readyz", &rz)
	if !rz.Ready {
		t.Fatalf("still not ready after a successful snapshot: %+v", rz)
	}
}

// TestCloseDrainsIngestQueue is the satellite regression test for the PR 7
// bug: Close used to stop the fold worker immediately, dropping frames the
// server had already acknowledged with 202. Now Close flips to draining
// (rejecting NEW work with 503 "draining"), flushes the queue, and only
// then stops.
func TestCloseDrainsIngestQueue(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defineStream(t, ts, "dr")

	// Stall the fold worker on the stream lock so acknowledged frames sit
	// in the queue when Close begins.
	st, _ := s.loadStream("dr")
	st.mu.Lock()
	frame := frameFromSpec(oltpObserveSpec(1, 0))
	batch := online.EncodeFrames([]online.Frame{frame, frame, frame})
	if status, _ := postFrames(t, ts, "dr", batch, nil); status != http.StatusAccepted {
		st.mu.Unlock()
		t.Fatalf("batch status=%d", status)
	}

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	for !s.draining.Load() {
		time.Sleep(time.Millisecond)
	}

	// Draining: new ingest and new optimizations are refused.
	var e struct {
		Code string `json:"code"`
	}
	if status, _ := postFrames(t, ts, "dr", batch, &e); status != http.StatusServiceUnavailable || e.Code != "draining" {
		st.mu.Unlock()
		t.Fatalf("draining ingest: status=%d code=%q, want 503 draining", status, e.Code)
	}
	if status, env := postEnvelope(t, ts, "/v1/advise", AdviseRequest{Workload: oltpObserveSpec(1, 0), SLA: 0.25}); status != http.StatusServiceUnavailable || env.Code != "draining" {
		st.mu.Unlock()
		t.Fatalf("draining advise: status=%d code=%q", status, env.Code)
	}

	// Release the fold: Close must flush all 3 acknowledged frames.
	st.mu.Unlock()
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := s.ingested.Load(); got != 3 {
		t.Fatalf("ingested=%d after drain, want 3 (202-acknowledged frames must not be dropped)", got)
	}
	if got := s.queued.Load(); got != 0 {
		t.Fatalf("queued=%d after drain, want 0", got)
	}
	// Idempotent: the second Close reports the same outcome.
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestCloseDrainDeadline: a fold worker that cannot make progress bounds
// the drain — Close returns an error naming the abandoned frames instead
// of hanging shutdown forever.
func TestCloseDrainDeadline(t *testing.T) {
	s := New(Config{Workers: 2, DrainTimeout: 50 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defineStream(t, ts, "stuck")

	st, _ := s.loadStream("stuck")
	st.mu.Lock()
	defer st.mu.Unlock()
	batch := online.EncodeFrames([]online.Frame{frameFromSpec(oltpObserveSpec(1, 0))})
	if status, _ := postFrames(t, ts, "stuck", batch, nil); status != http.StatusAccepted {
		t.Fatalf("batch status=%d", status)
	}
	err := s.Close()
	if err == nil || !strings.Contains(err.Error(), "drain deadline") {
		t.Fatalf("close error = %v, want a drain-deadline error", err)
	}
}

// TestGuardContainsPanics: guard recovers, counts, and surfaces background
// panics in /v1/healthz — a panicking fold or ticker step cannot kill the
// server.
func TestGuardContainsPanics(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.guard("test", func() { panic("boom") })
	s.guard("test", func() {}) // a healthy step does not count
	var h HealthResponse
	getJSON(t, ts, "/v1/healthz", &h)
	if h.Panics != 1 {
		t.Fatalf("healthz panics=%d, want 1", h.Panics)
	}
}

// FuzzDecodeSnapshot fuzzes the snapshot payload decoder: any input either
// errors or decodes to a payload whose re-encoding is bit-identical — the
// same contract FuzzDecodeExtentFrame pins for the frame wire. (The sealed
// envelope above this layer is checksummed, so mutation fuzzing it is
// vacuous; the envelope has its own unit tests in internal/online.)
func FuzzDecodeSnapshot(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendSnapshotPayload(nil, snapshotPayload{}))
	f.Add(appendSnapshotPayload(nil, snapshotPayload{
		observed: 7, readvised: 1, ingested: 3,
		streams: []streamRecord{{
			name:   "orders",
			objFP:  "fp",
			config: []byte(`{"stream":"orders"}`),
			state:  online.ManagerState{Collector: online.CollectorState{ExtPages: 64}},
		}},
	}))
	f.Fuzz(func(t *testing.T, body []byte) {
		p, err := decodeSnapshotPayload(body)
		if err != nil {
			return
		}
		if re := appendSnapshotPayload(nil, p); !bytes.Equal(re, body) {
			t.Fatalf("accepted input does not round-trip: %x -> %x", body, re)
		}
	})
}
