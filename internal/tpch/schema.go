// Package tpch provides the TPC-H-like decision-support substrate of the
// paper's §4.4 evaluation: the eight-table schema with primary-key indexes
// (16 placeable objects, as in the paper), a deterministic scaled-down data
// generator whose tables are loaded in shuffled order ("all the tables are
// randomly reshuffled so that they are not clustered on the primary keys",
// §4.4), and the query workloads:
//
//   - the original 22 templates (approximated as structured
//     select-project-join-aggregate blocks over the engine's query IR;
//     correlated subqueries are flattened into selective predicates, which
//     preserves each template's I/O access pattern),
//   - the modified Q2/Q5/Q9/Q11/Q17 of Canim et al. with extra selective
//     key predicates (the Operational Data Store mix of §4.4.2), and
//   - the 11-template subset used for the exhaustive-search comparison
//     (§4.4.3).
package tpch

import (
	"fmt"
	"math/rand"

	"dotprov/internal/engine"
	"dotprov/internal/types"
)

// Date range of TPC-H data, in days since the Unix epoch.
const (
	DateLo = 8036  // 1992-01-01
	DateHi = 10591 // 1998-12-31
)

// Config controls data generation.
type Config struct {
	// ScaleFactor scales row counts relative to TPC-H SF1. The paper runs
	// SF20 on real hardware; the simulator default keeps tests fast.
	ScaleFactor float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultConfig is a laptop-scale configuration.
func DefaultConfig() Config { return Config{ScaleFactor: 0.01, Seed: 1} }

// Rows returns the row counts for the configuration.
func (c Config) Rows() map[string]int {
	sf := c.ScaleFactor
	if sf <= 0 {
		sf = 0.01
	}
	atLeast := func(n float64, min int) int {
		if int(n) < min {
			return min
		}
		return int(n)
	}
	orders := atLeast(1_500_000*sf, 150)
	return map[string]int{
		"region":   5,
		"nation":   25,
		"supplier": atLeast(10_000*sf, 10),
		"customer": atLeast(150_000*sf, 30),
		"part":     atLeast(200_000*sf, 40),
		"partsupp": atLeast(800_000*sf, 160),
		"orders":   orders,
		"lineitem": orders * 4, // TPC-H averages 4 lineitems per order
	}
}

var (
	regions   = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	segments  = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	brands    = []string{"Brand#11", "Brand#12", "Brand#21", "Brand#22", "Brand#31", "Brand#32", "Brand#41", "Brand#42", "Brand#51", "Brand#52"}
	mfgrs     = []string{"Mfgr#1", "Mfgr#2", "Mfgr#3", "Mfgr#4", "Mfgr#5"}
	ptypes    = []string{"ECONOMY ANODIZED STEEL", "LARGE BRUSHED BRASS", "MEDIUM POLISHED COPPER", "PROMO BURNISHED NICKEL", "SMALL PLATED TIN", "STANDARD POLISHED STEEL"}
	shipmodes = []string{"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}
	prios     = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
)

func col(name string, k types.Kind) types.Column { return types.Column{Name: name, Kind: k} }

// Build creates the TPC-H schema in the database and loads generated data
// in shuffled physical order, then runs Analyze. The resulting catalog has
// 16 objects: 8 tables and 8 primary-key indexes.
func Build(db *engine.DB, cfg Config) error {
	if err := createSchema(db, allTables); err != nil {
		return err
	}
	if err := load(db, cfg, allTables); err != nil {
		return err
	}
	return db.Analyze()
}

// BuildSubset creates only the tables used in the exhaustive-search
// experiment (§4.4.3: lineitem, orders, customer, part and their indices —
// 8 objects).
func BuildSubset(db *engine.DB, cfg Config) error {
	sub := []string{"customer", "part", "orders", "lineitem"}
	if err := createSchema(db, sub); err != nil {
		return err
	}
	if err := load(db, cfg, sub); err != nil {
		return err
	}
	return db.Analyze()
}

var allTables = []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"}

func createSchema(db *engine.DB, tables []string) error {
	defs := map[string]struct {
		schema *types.Schema
		pk     []string
	}{
		"region": {types.NewSchema(
			col("r_regionkey", types.KindInt),
			col("r_name", types.KindString),
		), []string{"r_regionkey"}},
		"nation": {types.NewSchema(
			col("n_nationkey", types.KindInt),
			col("n_name", types.KindString),
			col("n_regionkey", types.KindInt),
		), []string{"n_nationkey"}},
		"supplier": {types.NewSchema(
			col("s_suppkey", types.KindInt),
			col("s_name", types.KindString),
			col("s_nationkey", types.KindInt),
			col("s_acctbal", types.KindFloat),
		), []string{"s_suppkey"}},
		"customer": {types.NewSchema(
			col("c_custkey", types.KindInt),
			col("c_name", types.KindString),
			col("c_nationkey", types.KindInt),
			col("c_mktsegment", types.KindString),
			col("c_acctbal", types.KindFloat),
		), []string{"c_custkey"}},
		"part": {types.NewSchema(
			col("p_partkey", types.KindInt),
			col("p_name", types.KindString),
			col("p_mfgr", types.KindString),
			col("p_brand", types.KindString),
			col("p_type", types.KindString),
			col("p_size", types.KindInt),
			col("p_retailprice", types.KindFloat),
		), []string{"p_partkey"}},
		"partsupp": {types.NewSchema(
			col("ps_partkey", types.KindInt),
			col("ps_suppkey", types.KindInt),
			col("ps_availqty", types.KindInt),
			col("ps_supplycost", types.KindFloat),
		), []string{"ps_partkey", "ps_suppkey"}},
		"orders": {types.NewSchema(
			col("o_orderkey", types.KindInt),
			col("o_custkey", types.KindInt),
			col("o_orderstatus", types.KindString),
			col("o_totalprice", types.KindFloat),
			col("o_orderdate", types.KindDate),
			col("o_orderpriority", types.KindString),
		), []string{"o_orderkey"}},
		"lineitem": {types.NewSchema(
			col("l_orderkey", types.KindInt),
			col("l_linenumber", types.KindInt),
			col("l_partkey", types.KindInt),
			col("l_suppkey", types.KindInt),
			col("l_quantity", types.KindFloat),
			col("l_extendedprice", types.KindFloat),
			col("l_discount", types.KindFloat),
			col("l_returnflag", types.KindString),
			col("l_shipdate", types.KindDate),
			col("l_receiptdate", types.KindDate),
			col("l_shipmode", types.KindString),
		), []string{"l_orderkey", "l_linenumber"}},
	}
	for _, name := range tables {
		d, ok := defs[name]
		if !ok {
			return fmt.Errorf("tpch: unknown table %q", name)
		}
		if _, err := db.CreateTable(name, d.schema, d.pk); err != nil {
			return err
		}
	}
	return nil
}

// load generates and loads rows table by table. Rows are generated in key
// order, then inserted in a shuffled permutation so heap order does not
// follow the primary key.
func load(db *engine.DB, cfg Config, tables []string) error {
	rows := cfg.Rows()
	r := rand.New(rand.NewSource(cfg.Seed))
	gens := map[string]func(i int, r *rand.Rand) types.Tuple{
		"region": func(i int, r *rand.Rand) types.Tuple {
			return types.Tuple{types.NewInt(int64(i)), types.NewString(regions[i%len(regions)])}
		},
		"nation": func(i int, r *rand.Rand) types.Tuple {
			return types.Tuple{
				types.NewInt(int64(i)),
				types.NewString(fmt.Sprintf("NATION-%02d", i)),
				types.NewInt(int64(i % 5)),
			}
		},
		"supplier": func(i int, r *rand.Rand) types.Tuple {
			return types.Tuple{
				types.NewInt(int64(i)),
				types.NewString(fmt.Sprintf("Supplier#%09d", i)),
				types.NewInt(int64(r.Intn(25))),
				types.NewFloat(float64(r.Intn(999999)) / 100),
			}
		},
		"customer": func(i int, r *rand.Rand) types.Tuple {
			return types.Tuple{
				types.NewInt(int64(i)),
				types.NewString(fmt.Sprintf("Customer#%09d", i)),
				types.NewInt(int64(r.Intn(25))),
				types.NewString(segments[r.Intn(len(segments))]),
				types.NewFloat(float64(r.Intn(1099999))/100 - 999.99),
			}
		},
		"part": func(i int, r *rand.Rand) types.Tuple {
			return types.Tuple{
				types.NewInt(int64(i)),
				types.NewString(fmt.Sprintf("part name %d padding padding", i)),
				types.NewString(mfgrs[r.Intn(len(mfgrs))]),
				types.NewString(brands[r.Intn(len(brands))]),
				types.NewString(ptypes[r.Intn(len(ptypes))]),
				types.NewInt(int64(1 + r.Intn(50))),
				types.NewFloat(900 + float64(i%1000)),
			}
		},
	}
	nPart := rows["part"]
	nSupp := rows["supplier"]
	nCust := rows["customer"]
	nOrders := rows["orders"]

	for _, name := range tables {
		switch name {
		case "partsupp":
			// 4 suppliers per part, like dbgen.
			n := rows["partsupp"]
			if err := loadShuffled(db, name, n, func(i int) types.Tuple {
				part := i / 4
				if part >= nPart {
					part = part % nPart
				}
				supp := (part + (i%4)*(nSupp/4+1)) % nSupp
				return types.Tuple{
					types.NewInt(int64(part)),
					types.NewInt(int64(supp)),
					types.NewInt(int64(1 + r.Intn(9999))),
					types.NewFloat(float64(1+r.Intn(100000)) / 100),
				}
			}); err != nil {
				return err
			}
		case "orders":
			if err := loadShuffled(db, name, nOrders, func(i int) types.Tuple {
				return types.Tuple{
					types.NewInt(int64(i)),
					types.NewInt(int64(r.Intn(nCust))),
					types.NewString([]string{"O", "F", "P"}[r.Intn(3)]),
					types.NewFloat(1000 + float64(r.Intn(400000))/100),
					types.NewDate(int64(DateLo + r.Intn(DateHi-DateLo+1))),
					types.NewString(prios[r.Intn(len(prios))]),
				}
			}); err != nil {
				return err
			}
		case "lineitem":
			n := rows["lineitem"]
			if err := loadShuffled(db, name, n, func(i int) types.Tuple {
				order := i / 4
				if order >= nOrders {
					order = order % nOrders
				}
				ship := int64(DateLo + r.Intn(DateHi-DateLo+1))
				return types.Tuple{
					types.NewInt(int64(order)),
					types.NewInt(int64(i%4 + 1)),
					types.NewInt(int64(r.Intn(nPart))),
					types.NewInt(int64(r.Intn(nSupp))),
					types.NewFloat(float64(1 + r.Intn(50))),
					types.NewFloat(float64(100+r.Intn(10000)) / 10),
					types.NewFloat(float64(r.Intn(11)) / 100),
					types.NewString([]string{"A", "N", "R"}[r.Intn(3)]),
					types.NewDate(ship),
					types.NewDate(ship + int64(1+r.Intn(30))),
					types.NewString(shipmodes[r.Intn(len(shipmodes))]),
				}
			}); err != nil {
				return err
			}
		default:
			gen := gens[name]
			if err := loadShuffled(db, name, rows[name], func(i int) types.Tuple {
				return gen(i, r)
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// loadShuffled materialises n generated rows and loads them in a random
// permutation so the heap is unclustered.
func loadShuffled(db *engine.DB, table string, n int, gen func(i int) types.Tuple) error {
	tuples := make([]types.Tuple, n)
	for i := 0; i < n; i++ {
		tuples[i] = gen(i)
	}
	r := rand.New(rand.NewSource(int64(len(table)) * int64(n)))
	r.Shuffle(n, func(i, j int) { tuples[i], tuples[j] = tuples[j], tuples[i] })
	for _, tu := range tuples {
		if err := db.Load(table, tu); err != nil {
			return fmt.Errorf("tpch: loading %s: %w", table, err)
		}
	}
	return nil
}
